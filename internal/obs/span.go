package obs

import "sort"

// Span is one timed region of the pipeline. Spans form a hierarchy via
// Child; a completed span becomes an Event in the recorder's sink. Spans
// must start and end on the pipeline goroutine (DESIGN.md decision 8) so
// their clock readings — and therefore the trace bytes — stay
// deterministic under the fake clock.
type Span struct {
	r      *Recorder
	name   string
	id     int64
	parent int64
	start  uint64
}

// Event is one completed span in the JSONL event sink.
type Event struct {
	Name   string `json:"name"`
	Start  uint64 `json:"start_ns"`
	Dur    uint64 `json:"dur_ns"`
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"`
}

// Span starts a new root span.
func (r *Recorder) Span(name string) *Span { return r.span(name, 0) }

func (r *Recorder) span(name string, parent int64) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	return &Span{r: r, name: name, id: id, parent: parent, start: r.clock.Now()}
}

// Child starts a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.r.span(name, s.id)
}

// End completes the span and emits it to the event sink. End is
// idempotent-unsafe by design: call it exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.r.clock.Now()
	ev := Event{Name: s.name, Start: s.start, Dur: end - s.start, ID: s.id, Parent: s.parent}
	s.r.mu.Lock()
	s.r.events = append(s.r.events, ev)
	s.r.mu.Unlock()
}

// Events returns a copy of the completed spans in sorted emission order:
// by start time, then span ID. Under the fake clock and single-goroutine
// span usage this order — and hence every exporter's output — is
// deterministic.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sortEvents(out)
	return out
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].ID < evs[j].ID
	})
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// This file is the live half of the observability layer: an ordered
// ProgressEvent stream fanned out to pluggable subscribers. The snapshot
// exporters (export.go) answer "what did the run cost" after the fact;
// the event bus answers "where is the run right now" while it executes —
// the seam castan-as-a-service needs for a streamable progress feed.
//
// Determinism contract (DESIGN.md decision 13): sequence numbers and
// event timestamps are assigned under the recorder mutex, and the
// pipeline only publishes from single-goroutine orchestration points
// (stage boundaries, the symbex pop loop, discovery's per-set loop), so
// under a FakeClock the published stream is byte-identical at every
// worker count — exactly the rule spans already obey. Counter deltas are
// attached only to stage_end events, which happen after every worker
// join, where counter totals are worker-count invariant. Publishing from
// concurrent goroutines (a campaign fanning out analyses over one shared
// recorder) stays safe and per-subscriber ordered, but the interleaving
// across pipelines then reflects real scheduling — live telemetry, not a
// golden.

// ProgressEvent is one entry of the live telemetry stream.
type ProgressEvent struct {
	// Seq is the dense, strictly increasing publish sequence number
	// (1-based). Subscribers observe events in Seq order with no gaps.
	Seq uint64 `json:"seq"`
	// TNanos is the recorder clock's reading at publish time.
	TNanos uint64 `json:"t_ns"`
	// Kind is one of the Kind* constants below.
	Kind string `json:"kind"`
	// Stage names the pipeline stage the event belongs to (span names:
	// "castan.discover", "castan.symbex", ...).
	Stage string `json:"stage,omitempty"`
	// Name qualifies progress and note events (the batch being advanced,
	// or the note text).
	Name string `json:"name,omitempty"`
	// Done/Total carry batch progress ("done of total"). Total is a
	// best-effort bound (e.g. the exploration budget) and may be 0 when
	// the stage cannot estimate one.
	Done  uint64 `json:"done,omitempty"`
	Total uint64 `json:"total,omitempty"`
	// Counters holds the per-counter deltas accumulated since the
	// previous stage_end event (stage_end only; keys serialize sorted, so
	// the bytes are deterministic).
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// ProgressEvent kinds.
const (
	KindStageBegin = "stage_begin"
	KindStageEnd   = "stage_end"
	KindProgress   = "progress"
	KindNote       = "note"
)

// Subscriber receives published events. OnProgress is called under the
// recorder mutex — in publish order, never concurrently — so it must be
// fast and must never call back into the recorder.
type Subscriber interface {
	OnProgress(ev ProgressEvent)
}

// Subscribe attaches a subscriber to the recorder's event bus. Safe on a
// nil recorder (no-op). Subscribers cannot be detached: they live for the
// recorder's lifetime, like instruments.
func (r *Recorder) Subscribe(s Subscriber) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.subs = append(r.subs, s)
	r.mu.Unlock()
	r.hasSubs.Store(true)
}

// Publishing reports whether any subscriber is attached — the fast path
// emitters may use to skip building event payloads. False on nil.
func (r *Recorder) Publishing() bool {
	return r != nil && r.hasSubs.Load()
}

// publishLocked assigns the sequence number and timestamp and delivers to
// every subscriber. Caller holds r.mu.
func (r *Recorder) publishLocked(ev ProgressEvent) {
	r.seq++
	ev.Seq = r.seq
	ev.TNanos = r.clock.Now()
	for _, s := range r.subs {
		s.OnProgress(ev)
	}
}

// StageBegin publishes a stage_begin event. No-op without subscribers.
func (r *Recorder) StageBegin(stage string) {
	if !r.Publishing() {
		return
	}
	r.mu.Lock()
	r.publishLocked(ProgressEvent{Kind: KindStageBegin, Stage: stage})
	r.mu.Unlock()
}

// StageEnd publishes a stage_end event carrying the deltas of every
// counter that moved since the previous stage_end (or since the run
// began). Stage ends happen after worker joins, where counter totals are
// worker-count invariant, so the deltas are too. No-op without
// subscribers.
func (r *Recorder) StageEnd(stage string) {
	if !r.Publishing() {
		return
	}
	r.mu.Lock()
	var deltas map[string]uint64
	if r.watermark == nil {
		r.watermark = make(map[string]uint64, len(r.counters))
	}
	for name, c := range r.counters {
		v := c.Value()
		if d := v - r.watermark[name]; d != 0 {
			if deltas == nil {
				deltas = map[string]uint64{}
			}
			deltas[name] = d
			r.watermark[name] = v
		}
	}
	r.publishLocked(ProgressEvent{Kind: KindStageEnd, Stage: stage, Counters: deltas})
	r.mu.Unlock()
}

// Progress publishes a batch-progress event: done of total units within
// the named sub-task of a stage. No-op without subscribers.
func (r *Recorder) Progress(stage, name string, done, total uint64) {
	if !r.Publishing() {
		return
	}
	r.mu.Lock()
	r.publishLocked(ProgressEvent{Kind: KindProgress, Stage: stage, Name: name, Done: done, Total: total})
	r.mu.Unlock()
}

// Note publishes a free-form note event (degradations, one-off
// milestones). No-op without subscribers.
func (r *Recorder) Note(stage, note string) {
	if !r.Publishing() {
		return
	}
	r.mu.Lock()
	r.publishLocked(ProgressEvent{Kind: KindNote, Stage: stage, Name: note})
	r.mu.Unlock()
}

// JSONLSink streams events as JSON Lines to a writer, one event per
// line, in publish order. Writes are buffered; the first error is sticky
// (later events are dropped) and is reported by Close and Err — nothing
// fails silently, but a broken sink never disturbs the pipeline either.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLSink wraps w in a streaming sink. If w is an io.Closer, Close
// closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// OpenJSONLSink creates path and returns a sink streaming to it.
func OpenJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// OnProgress implements Subscriber.
func (s *JSONLSink) OnProgress(ev ProgressEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	data = append(data, '\n')
	if _, err := s.bw.Write(data); err != nil {
		s.err = err
	}
}

// Err returns the sink's sticky error, if any, without closing it.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes buffered events and closes the underlying writer (when
// it is a Closer). It returns the first error the sink ever hit — a
// sticky write error, a flush error, or the close error — so buffered
// writes can never be dropped silently. Close is idempotent: later calls
// return the same error.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ferr := s.bw.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
		s.c = nil
	}
	return s.err
}

// SubDroppedCounter is the canonical counter name for events a bounded
// subscriber had to discard on a full buffer (see ChanSub.CountDrops).
// It is deliberately not a gate counter: drops depend on how fast the
// consumer drains, which is live scheduling, not analysis effort.
const SubDroppedCounter = "obs.sub.dropped"

// ChanSub buffers events in a bounded channel — the seam castand drains
// into server-sent events. Delivery never blocks the pipeline: when the
// buffer is full the event is counted as dropped instead. Sequence
// numbers make drops visible to the consumer as gaps, and CountDrops
// additionally mirrors the count into a real counter so operators see
// slow consumers without diffing sequence numbers.
type ChanSub struct {
	ch      chan ProgressEvent
	dropped atomic.Uint64
	counter *Counter
}

// NewChanSub returns a subscriber buffering up to buffer events
// (default 1024 when buffer <= 0).
func NewChanSub(buffer int) *ChanSub {
	if buffer <= 0 {
		buffer = 1024
	}
	return &ChanSub{ch: make(chan ProgressEvent, buffer)}
}

// CountDrops mirrors every dropped event into ctr — conventionally
// rec.Counter(SubDroppedCounter) — in addition to the local Dropped
// tally. Set it before subscribing: OnProgress runs under the recorder
// mutex, so the counter must be resolved up front (a Counter add is a
// bare atomic, safe there; a Recorder.Counter lookup would deadlock).
func (c *ChanSub) CountDrops(ctr *Counter) { c.counter = ctr }

// OnProgress implements Subscriber with a non-blocking send.
func (c *ChanSub) OnProgress(ev ProgressEvent) {
	select {
	case c.ch <- ev:
	default:
		c.dropped.Add(1)
		c.counter.Add(1)
	}
}

// Events is the stream to drain. The channel is never closed by the
// subscriber; consumers stop reading when the run is over.
func (c *ChanSub) Events() <-chan ProgressEvent { return c.ch }

// Dropped reports how many events were discarded on a full buffer.
func (c *ChanSub) Dropped() uint64 { return c.dropped.Load() }

// TTYRenderer renders events as a live, single-line progress display —
// what cmd/castan -progress shows on stderr. Progress events overwrite
// the current line with \r; stage boundaries and notes print durable
// lines. Write errors are ignored: a broken TTY must not fail a run.
type TTYRenderer struct {
	W io.Writer

	mu       sync.Mutex
	lineOpen bool
}

// NewTTYRenderer returns a renderer writing to w.
func NewTTYRenderer(w io.Writer) *TTYRenderer { return &TTYRenderer{W: w} }

// OnProgress implements Subscriber.
func (t *TTYRenderer) OnProgress(ev ProgressEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	endLine := func() {
		if t.lineOpen {
			fmt.Fprint(t.W, "\n")
			t.lineOpen = false
		}
	}
	switch ev.Kind {
	case KindStageBegin:
		endLine()
		fmt.Fprintf(t.W, "==> %s\n", ev.Stage)
	case KindProgress:
		if ev.Total > 0 {
			fmt.Fprintf(t.W, "\r    %s: %s %d/%d", ev.Stage, ev.Name, ev.Done, ev.Total)
		} else {
			fmt.Fprintf(t.W, "\r    %s: %s %d", ev.Stage, ev.Name, ev.Done)
		}
		t.lineOpen = true
	case KindStageEnd:
		endLine()
		fmt.Fprintf(t.W, "<== %s (%d counters moved)\n", ev.Stage, len(ev.Counters))
	case KindNote:
		endLine()
		fmt.Fprintf(t.W, "    %s: %s\n", ev.Stage, ev.Name)
	}
}

// ReadProgressEvents decodes a JSONL stream written by JSONLSink back
// into events (the tracediff/tracecheck side of the seam).
func ReadProgressEvents(r io.Reader) ([]ProgressEvent, error) {
	var out []ProgressEvent
	dec := json.NewDecoder(r)
	for {
		var ev ProgressEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: decode progress event %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

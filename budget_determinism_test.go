package repro

import (
	"bytes"
	"testing"

	"castan/internal/budget"
	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
)

// The degraded-run golden (DESIGN.md decision 10): a budget-exhausted
// analysis is as reproducible as a full one. Under the fake clock the
// whole degraded Output — frames, Degradations, UnreconciledSites,
// BudgetTicksUsed — and the telemetry/trace bytes must be identical at
// W=1, W=4 and W=8, because budget charges are commutative atomic adds
// and exhaustion checks happen only at deterministic orchestration
// points.

func budgetedAnalyze(t *testing.T, workers int) (*obs.Recorder, *castan.Output) {
	t.Helper()
	inst, err := nf.New("lb-chain")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.NewFakeClock(1000))
	m := budget.New(0)
	// lb-chain completes 10 packets in a few dozen pops; 8 guarantees a
	// mid-search cut at the same pop boundary at every worker count.
	m.SetStageLimit(budget.StageSymbex, 8)
	hier := memsim.New(memsim.DefaultGeometry(), 2018)
	out, err := castan.Analyze(inst, hier, castan.Config{
		NPackets:  10,
		MaxStates: 4000,
		Seed:      2018,
		Workers:   workers,
		Obs:       rec,
		Budget:    m,
	})
	if err != nil {
		t.Fatalf("Analyze(W=%d): %v", workers, err)
	}
	if !out.Degraded() {
		t.Fatalf("W=%d: 8-pop symbex budget did not degrade the run", workers)
	}
	return rec, out
}

func degradedRunBytes(t *testing.T, rec *obs.Recorder, out *castan.Output) (report, trace []byte) {
	t.Helper()
	// AnalysisTime is wall-clock by design (the paper's Table 4 column);
	// zero it so the report bytes compare across runs.
	out.AnalysisTime = 0
	var rb, tb bytes.Buffer
	if err := out.WriteReport(&rb); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	return rb.Bytes(), tb.Bytes()
}

func TestWorkerCountDeterminismBudgetExhausted(t *testing.T) {
	refRec, refOut := budgetedAnalyze(t, 1)

	// The cut must be visible end to end: a symbex degradation entry, a
	// matching telemetry counter, and a non-zero tick account.
	hasSymbex := false
	for _, d := range refOut.Degradations {
		if d.Stage == "symbex" {
			hasSymbex = true
		}
	}
	if !hasSymbex {
		t.Fatalf("no symbex degradation: %+v", refOut.Degradations)
	}
	if refOut.Telemetry.Counters["castan.degraded.symbex"] == 0 {
		t.Error("castan.degraded.symbex counter not bumped")
	}
	if refOut.BudgetTicksUsed == 0 {
		t.Error("BudgetTicksUsed = 0 on a budget-cut run")
	}

	refReport, refTrace := degradedRunBytes(t, refRec, refOut)
	for _, w := range []int{4, 8} {
		rec, out := budgetedAnalyze(t, w)
		report, trace := degradedRunBytes(t, rec, out)
		if !bytes.Equal(report, refReport) {
			t.Errorf("W=%d: degraded report differs from W=1:\n%s\n---\n%s", w, report, refReport)
		}
		if !bytes.Equal(trace, refTrace) {
			t.Errorf("W=%d: Chrome trace bytes differ from W=1", w)
		}
	}
}

package repro

import (
	"testing"

	"castan/internal/castan"
	"castan/internal/faultinject"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
	"castan/internal/obs/tracediff"
)

// End-to-end regression attribution (the tracediff contract): perturb
// exactly one pipeline stage and the diff must name that stage, with no
// false positives from the untouched ones.
//
// The faultinject probe-timing perturbation corrupts the signal
// cache-model discovery measures, so the perturbed run gives up on sets
// earlier and probes *less* (fewer memsim.probe_line_reads, fewer
// contention sets). Diffing perturbed -> clean therefore shows a real
// discovery-effort regression whose top attribution is castan.discover.
// The smaller discovered model also changes the downstream constraint
// problem (solver backtracks move), which is fine: attribution ranks the
// perturbed stage first, it does not pretend faults never propagate.
func TestTracediffAttributesPerturbedStage(t *testing.T) {
	analyze := func(plan *faultinject.Plan) *tracediff.Run {
		inst, err := nf.New("lpm-dl1")
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.New(obs.NewFakeClock(1000))
		if _, err := castan.Analyze(inst, memsim.New(memsim.DefaultGeometry(), 2018), castan.Config{
			NPackets:  10,
			MaxStates: 4000,
			Seed:      2018,
			Obs:       rec,
			Faults:    plan,
		}); err != nil {
			t.Fatal(err)
		}
		m := rec.Snapshot()
		return &tracediff.Run{Label: "lpm-dl1", Counters: m.Counters, Phases: m.Phases}
	}

	perturbed := analyze(&faultinject.Plan{Name: "probe-perturb", Seed: 2, ProbePerturb: true})
	clean := analyze(nil)

	if p, c := perturbed.Counters["memsim.probe_line_reads"], clean.Counters["memsim.probe_line_reads"]; p >= c {
		t.Fatalf("fixture assumption broken: perturbed run probed %d lines, clean %d — expected the perturbation to shrink discovery effort", p, c)
	}

	rep := tracediff.Diff(perturbed, clean, 0.05)
	if !rep.HasRegressions() {
		t.Fatal("no regression detected between perturbed baseline and clean run")
	}
	if rep.TopStage != "castan.discover" {
		t.Errorf("TopStage = %q, want castan.discover; regressions: %+v", rep.TopStage, rep.Regressions)
	}
	probed := false
	for _, e := range rep.Regressions {
		if e.Name == "memsim.probe_line_reads" {
			probed = true
			if e.Stage != "castan.discover" {
				t.Errorf("memsim.probe_line_reads attributed to %s, want castan.discover", e.Stage)
			}
		}
	}
	if !probed {
		t.Errorf("memsim.probe_line_reads not among regressions: %+v", rep.Regressions)
	}
	// The search itself is unperturbed: the core exploration counters are
	// bit-identical and never enter the diff at all.
	for _, e := range rep.Counters {
		if e.Name == "symbex.states_explored" || e.Name == "solver.queries" {
			t.Errorf("core search counter %s moved (%d -> %d) under a probe-timing fault", e.Name, e.Base, e.New)
		}
	}
}

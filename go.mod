module castan

go 1.22

package repro

import (
	"testing"

	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/packet"
)

// runAblation analyzes one NF twice — with a feature enabled and
// disabled — and reports the resulting adversarial quality, quantifying
// how much each of CASTAN's two signature mechanisms contributes.
func runAblation(b *testing.B, nfName string, toggleCache, toggleRainbow bool) {
	b.Helper()
	npackets, maxStates := 20, 20000
	if testing.Short() {
		npackets, maxStates = 8, 6000
	}
	analyze := func(noCache, noRainbow bool) *castan.Output {
		inst, err := nf.New(nfName)
		if err != nil {
			b.Fatal(err)
		}
		hier := memsim.New(memsim.DefaultGeometry(), 2018)
		out, err := castan.Analyze(inst, hier, castan.Config{
			NPackets:     npackets,
			MaxStates:    maxStates,
			Seed:         2018,
			NoCacheModel: noCache,
			NoRainbow:    noRainbow,
		})
		if err != nil {
			b.Fatal(err)
		}
		return out
	}
	var on, off *castan.Output
	for i := 0; i < b.N; i++ {
		on = analyze(false, false)
		off = analyze(toggleCache, toggleRainbow)
	}
	if toggleCache {
		b.ReportMetric(float64(on.ExpectDRAM), "dram_on")
		b.ReportMetric(float64(off.ExpectDRAM), "dram_off")
	}
	if toggleRainbow {
		b.ReportMetric(collisionPile(b, on), "pile_on")
		b.ReportMetric(collisionPile(b, off), "pile_off")
	}
}

// collisionPile measures the largest real hash-bucket pile of a workload.
func collisionPile(b *testing.B, out *castan.Output) float64 {
	b.Helper()
	buckets := map[uint64]int{}
	for _, fr := range out.Frames {
		p, err := packet.Parse(fr)
		if err != nil {
			b.Fatal(err)
		}
		buckets[nf.ChainBucketOf(p.Tuple())]++
	}
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	return float64(max)
}

package repro

import (
	"runtime"
	"testing"
	"time"

	"castan/internal/nfhash"
	"castan/internal/rainbow"
)

// BenchmarkParallelSpeedup measures the deterministic fan-out layer on
// the rainbow chain-generation hot loop: the same table is built at W=1
// and W=GOMAXPROCS and the wall-clock ratio is reported as speedup_x.
// On a 4-core runner the expected value is ≥2; on a single-core machine
// it degenerates to ~1 (the layer adds no fan-out below two workers).
// Determinism across worker counts is asserted separately by
// TestWorkerCountDeterminism and the per-package invariant tests.
func BenchmarkParallelSpeedup(b *testing.B) {
	space := nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: 0xc0a80101, DstPort: 80}
	cfg := rainbow.DefaultConfig(20)
	if testing.Short() {
		cfg = rainbow.DefaultConfig(16)
	}
	build := func(w int) time.Duration {
		c := cfg
		c.Workers = w
		start := time.Now()
		if _, err := rainbow.Build(nfhash.TableHash, space, c); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	par := runtime.GOMAXPROCS(0)
	var seqTotal, parTotal time.Duration
	for i := 0; i < b.N; i++ {
		seqTotal += build(1)
		parTotal += build(par)
	}
	b.ReportMetric(float64(par), "workers")
	b.ReportMetric(seqTotal.Seconds()/float64(b.N), "seq_s")
	b.ReportMetric(parTotal.Seconds()/float64(b.N), "par_s")
	if parTotal > 0 {
		b.ReportMetric(float64(seqTotal)/float64(parTotal), "speedup_x")
	}
}

package repro

import (
	"bytes"
	"testing"

	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
)

// The observability golden (DESIGN.md decision 8): an instrumented
// analysis under the fake clock must emit byte-identical metrics JSON
// and Chrome-trace bytes at W=1, W=4 and W=8 — telemetry obeys the same
// determinism rule as the analysis output it describes.

func instrumentedAnalyze(t *testing.T, workers int) (*obs.Recorder, *castan.Output) {
	t.Helper()
	inst, err := nf.New("lb-chain")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.NewFakeClock(1000))
	hier := memsim.New(memsim.DefaultGeometry(), 2018)
	out, err := castan.Analyze(inst, hier, castan.Config{
		NPackets:  10,
		MaxStates: 4000,
		Seed:      2018,
		Workers:   workers,
		Obs:       rec,
	})
	if err != nil {
		t.Fatalf("Analyze(W=%d): %v", workers, err)
	}
	return rec, out
}

func telemetryBytes(t *testing.T, rec *obs.Recorder) (metrics, trace []byte) {
	t.Helper()
	var mb, tb bytes.Buffer
	if err := rec.Snapshot().WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	return mb.Bytes(), tb.Bytes()
}

func TestWorkerCountDeterminismTelemetry(t *testing.T) {
	refRec, refOut := instrumentedAnalyze(t, 1)
	refMetrics, refTrace := telemetryBytes(t, refRec)

	// The run must actually exercise the instrumented layers.
	for _, name := range []string{
		"solver.queries", "symbex.states_explored", "symbex.forks",
		"memsim.accesses", "memsim.dram_misses", "castan.havocs",
	} {
		if refOut.Telemetry.Counters[name] == 0 {
			t.Errorf("counter %s is zero; run did not exercise its layer", name)
		}
	}
	if n, err := obs.ValidateChromeTrace(bytes.TrimSpace(refTrace)); err != nil || n == 0 {
		t.Fatalf("trace fails its own schema (%d events): %v", n, err)
	}
	wantPhases := map[string]bool{}
	for _, p := range refOut.Telemetry.Phases {
		wantPhases[p.Name] = true
	}
	for _, name := range []string{"castan.analyze", "castan.static", "castan.discover",
		"castan.icfg", "castan.symbex", "castan.reconcile"} {
		if !wantPhases[name] {
			t.Errorf("phase %s missing from telemetry: %+v", name, refOut.Telemetry.Phases)
		}
	}

	for _, w := range []int{4, 8} {
		rec, _ := instrumentedAnalyze(t, w)
		metrics, trace := telemetryBytes(t, rec)
		if !bytes.Equal(metrics, refMetrics) {
			t.Errorf("W=%d: metrics JSON differs from W=1:\n%s\n---\n%s", w, metrics, refMetrics)
		}
		if !bytes.Equal(trace, refTrace) {
			t.Errorf("W=%d: Chrome trace bytes differ from W=1", w)
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"castan/internal/obs/tracediff"
)

func TestIdenticalRunsExitClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-base", "testdata/base_metrics.json",
		"-new", "testdata/base_metrics.json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no counter or phase moved") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRegressedRunExits3WithAttribution(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-base", "testdata/base_metrics.json",
		"-base-trace", "testdata/base_trace.jsonl",
		"-new", "testdata/regressed_metrics.json",
		"-new-trace", "testdata/regressed_trace.jsonl",
		"-json", jsonPath,
	}, &out, &errb)
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"memsim.probe_line_reads",
		"top regression: castan.discover",
		"critical path (base): castan.analyze",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep tracediff.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "castan-tracediff/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.TopStage != "castan.discover" {
		t.Errorf("TopStage = %q, want castan.discover", rep.TopStage)
	}
	if len(rep.Regressions) == 0 || rep.Regressions[0].Name != "memsim.probe_line_reads" {
		t.Errorf("regressions = %+v", rep.Regressions)
	}
	// solver.queries moved +0.8% — inside tolerance, listed but not
	// regressed.
	for _, e := range rep.Regressions {
		if e.Name == "solver.queries" {
			t.Errorf("within-tolerance counter flagged: %+v", e)
		}
	}
}

func TestTraceOnlyComparison(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-base-trace", "testdata/base_trace.jsonl",
		"-new-trace", "testdata/regressed_trace.jsonl",
	}, &out, &errb)
	// Traces carry phases only (no counter samples in the JSONL fixture),
	// and phases never gate.
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "castan.discover") {
		t.Errorf("phase attribution missing:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-base", "testdata/base_metrics.json"}, &out, &errb); code != 2 {
		t.Errorf("missing new run: exit %d, want 2", code)
	}
	if code := run([]string{"-base", "testdata/nope.json", "-new", "testdata/base_metrics.json"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

// Command tracediff compares two runs' telemetry artifacts — metrics
// snapshots (cmd/castan -metrics-out) and/or trace exports (-trace, in
// Chrome or native JSONL format) — and attributes every counter and phase
// delta to the pipeline stage that owns it. It prints a human table and
// optionally writes the same report as JSON.
//
// Exit codes: 0 when no deterministic effort counter regressed beyond
// -tolerance, 3 when one did (the attribution is printed either way),
// 2 on usage errors, 1 on I/O or decode failures. Phase tick deltas are
// reported but never decide the exit code — under a wall clock they are
// load-dependent.
//
// Usage:
//
//	tracediff -base metrics_a.json -new metrics_b.json
//	tracediff -base a.json -base-trace a_trace.json -new b.json -new-trace b_trace.json -json report.json
//	tracediff -base-trace a_trace.json -new-trace b_trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"castan/internal/obs/tracediff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracediff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseMetrics = fs.String("base", "", "baseline metrics JSON (obs.Metrics snapshot)")
		newMetrics  = fs.String("new", "", "new-run metrics JSON")
		baseTrace   = fs.String("base-trace", "", "baseline trace file (Chrome or native JSONL)")
		newTrace    = fs.String("new-trace", "", "new-run trace file")
		tolerance   = fs.Float64("tolerance", 0.05, "allowed relative effort-counter growth before a delta counts as a regression")
		jsonOut     = fs.String("json", "", "also write the report as JSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*baseMetrics == "" && *baseTrace == "") || (*newMetrics == "" && *newTrace == "") {
		fmt.Fprintln(stderr, "tracediff: need a baseline (-base and/or -base-trace) and a new run (-new and/or -new-trace)")
		return 2
	}
	base, err := tracediff.LoadRun(*baseMetrics, *baseTrace)
	if err != nil {
		fmt.Fprintln(stderr, "tracediff:", err)
		return 1
	}
	cur, err := tracediff.LoadRun(*newMetrics, *newTrace)
	if err != nil {
		fmt.Fprintln(stderr, "tracediff:", err)
		return 1
	}
	rep := tracediff.Diff(base, cur, *tolerance)
	rep.Render(stdout)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(stderr, "tracediff:", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "tracediff:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "tracediff:", err)
			return 1
		}
	}
	if rep.HasRegressions() {
		return 3
	}
	return 0
}

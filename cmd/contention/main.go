// Command contention reverse-engineers the simulated processor's L3
// contention sets by timed pointer-chase probing (§3.2), printing a
// summary and optionally the full sets. The hidden slice hash is never
// consulted: only probe timings are.
//
// Usage:
//
//	contention -lines 2600 -sets 6
package main

import (
	"flag"
	"fmt"
	"os"

	"castan/internal/cachemodel"
	"castan/internal/memsim"
)

func main() {
	var (
		lines   = flag.Int("lines", 2600, "pool size in cache lines")
		stride  = flag.Int("stride", 8, "pool sampling stride in lines")
		sets    = flag.Int("sets", 6, "how many contention sets to discover (0 = all)")
		seed    = flag.Uint64("seed", 2018, "machine seed (fixes the hidden hash)")
		base    = flag.Uint64("base", 0x10000000, "base address of the probed region")
		verbose = flag.Bool("v", false, "print every member address")
		save    = flag.String("save", "", "persist the discovered model as JSON")
	)
	flag.Parse()

	geo := memsim.DefaultGeometry()
	hier := memsim.New(geo, *seed)
	fmt.Printf("probing %s (associativity %d, %d hidden sets)\n",
		geo, geo.L3Assoc(), geo.NumContentionSets())

	pool := make([]uint64, 0, *lines)
	for i := 0; i < *lines; i++ {
		pool = append(pool, *base+uint64(i**stride*geo.LineBytes))
	}
	model, err := cachemodel.Discover(hier, cachemodel.DiscoverConfig{
		Pool:      pool,
		Assoc:     geo.L3Assoc(),
		LineBytes: geo.LineBytes,
		LatL3:     geo.LatL3,
		LatDRAM:   geo.LatDRAM,
		MaxSets:   *sets,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "contention:", err)
		os.Exit(1)
	}
	if *save != "" {
		if err := model.SaveFile(*save); err != nil {
			fmt.Fprintln(os.Stderr, "contention:", err)
			os.Exit(1)
		}
		fmt.Println("saved model to", *save)
	}
	fmt.Printf("discovered %d contention sets from a %d-line pool:\n", len(model.Sets), len(pool))
	for i, s := range model.Sets {
		fmt.Printf("  set %d: %d members", i, len(s.Addrs))
		// Ground-truth check via the debug backdoor (the real tool cannot
		// do this; it is printed here to demonstrate discovery quality).
		consistent := true
		want := hier.DebugContentionSet(s.Addrs[0])
		for _, a := range s.Addrs {
			if hier.DebugContentionSet(a) != want {
				consistent = false
				break
			}
		}
		fmt.Printf(" (hidden set %d, consistent=%v)\n", want, consistent)
		if *verbose {
			for _, a := range s.Addrs {
				fmt.Printf("    %#x\n", a)
			}
		}
	}
}

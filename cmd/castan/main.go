// Command castan analyzes a network function and synthesizes an
// adversarial workload, writing it as a PCAP file together with the
// per-packet predicted performance metrics — the reproduction of the
// paper's analysis tool.
//
// Usage:
//
//	castan -nf lpm-dl1 -packets 40 -out adversarial.pcap
//
// Exit codes: 0 = clean analysis, 1 = failure, 2 = usage error,
// 3 = degraded analysis (a budget or deadline cut a stage short and the
// emitted workload is best-effort; see the "degradations" report field).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"castan/internal/budget"
	"castan/internal/cachemodel"
	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
	"castan/internal/pcap"
	"castan/internal/store"
	"castan/internal/workload"
)

func main() {
	var (
		nfName   = flag.String("nf", "", "network function to analyze ("+strings.Join(nf.Names, ", ")+")")
		packets  = flag.Int("packets", 0, "adversarial workload length (default: the paper's per-NF size)")
		states   = flag.Int("states", 6000, "symbolic exploration budget")
		seed     = flag.Uint64("seed", 2018, "seed for discovery sampling and the DUT's hidden hash")
		out      = flag.String("out", "", "PCAP output path (default <nf>-castan.pcap)")
		noCache  = flag.Bool("no-cache-model", false, "disable the cache model (ablation)")
		modelIn  = flag.String("cache-model", "", "load a persisted contention-set model instead of discovering one")
		storeDir = flag.String("store", "", "cross-run artifact store directory: cache models and rainbow tables are reused from it and persisted to it; a warm store skips discovery with byte-identical output")
		report   = flag.String("report", "", "write the per-packet metrics report (JSON) to this path")
		noRain   = flag.Bool("no-rainbow", false, "disable havoc reconciliation (ablation)")
		noVR     = flag.Bool("no-vrange", false, "disable value-range pruning, state merging, and the solver memo (ablation)")
		validate = flag.Bool("validate", true, "replay the workload on the interpreter as a sanity check")
		workers  = flag.Int("workers", 0, "worker count for parallel analysis stages (0 = GOMAXPROCS); output is identical at any value")
		trace    = flag.String("trace", "", "write a Chrome trace_event file (load in chrome://tracing or ui.perfetto.dev) of the pipeline to this path")
		metrics  = flag.String("metrics-out", "", "write the run's counters/gauges/histograms/phases (JSON) to this path")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this path")
		budgetT  = flag.Uint64("budget", 0, "whole-run budget in deterministic ticks (0 = unlimited); on exhaustion the pipeline degrades instead of failing")
		deadline = flag.Duration("deadline", 0, "wall-clock deadline (0 = none); checked at deterministic pipeline points and degrades like -budget")
		failDeg  = flag.Bool("fail-on-degraded", false, "exit 1 instead of 3 when any stage degraded")
		progress = flag.Bool("progress", false, "render live per-stage progress on stderr while the analysis runs")
		events   = flag.String("events", "", "stream the live ProgressEvent feed as JSON Lines to this path")
		httpDbg  = flag.String("httpdebug", "", "serve net/http/pprof and a /metricsz live metrics snapshot on this address (e.g. localhost:6060); local profiling only — never expose beyond localhost")
	)
	flag.Parse()
	if *nfName == "" {
		fmt.Fprintln(os.Stderr, "castan: -nf is required; known NFs:", strings.Join(nf.Names, ", "))
		os.Exit(2)
	}
	if _, ok := nf.Catalog[*nfName]; !ok {
		fmt.Fprintf(os.Stderr, "castan: unknown NF %q; known NFs:\n", *nfName)
		for _, n := range nf.Names {
			fmt.Fprintf(os.Stderr, "  %s\n", n)
		}
		os.Exit(2)
	}
	inst, err := nf.New(*nfName)
	if err != nil {
		fatal(err)
	}
	np := *packets
	if np == 0 {
		np = paperPackets[*nfName]
	}
	if np == 0 {
		np = 30
	}
	hier := memsim.New(memsim.DefaultGeometry(), *seed)
	fmt.Printf("analyzing %s (%d packets, %d states budget) on %s\n",
		*nfName, np, *states, hier.Geometry())
	cfg := castan.Config{
		NPackets:     np,
		MaxStates:    *states,
		Seed:         *seed,
		NoCacheModel: *noCache,
		NoRainbow:    *noRain,
		NoVRange:     *noVR,
		Workers:      *workers,
	}
	if *modelIn != "" {
		m, err := cachemodel.LoadFile(*modelIn)
		if err != nil {
			fatal(err)
		}
		cfg.CacheModel = m
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
	}
	if *budgetT > 0 || *deadline > 0 {
		cfg.Budget = budget.New(*budgetT)
		if *deadline > 0 {
			cfg.Budget.SetDeadline(nil, *deadline)
		}
	}
	if *trace != "" || *metrics != "" || *progress || *events != "" || *httpDbg != "" {
		// CLI runs use the wall clock: trace durations are real time.
		cfg.Obs = obs.New(nil)
	}
	if *progress {
		cfg.Obs.Subscribe(obs.NewTTYRenderer(os.Stderr))
	}
	// The events sink is closed explicitly on every exit path (fatal and
	// os.Exit bypass defers): a buffered write that never reached disk
	// must fail the run, not vanish.
	var eventsSink *obs.JSONLSink
	if *events != "" {
		var err error
		eventsSink, err = obs.OpenJSONLSink(*events)
		if err != nil {
			fatal(err)
		}
		cfg.Obs.Subscribe(eventsSink)
	}
	closeEvents := func() {
		if eventsSink == nil {
			return
		}
		if err := eventsSink.Close(); err != nil {
			eventsSink = nil
			fatal(fmt.Errorf("events stream %s: %w", *events, err))
		}
		eventsSink = nil
	}
	if *httpDbg != "" {
		ln, err := obs.ServeDebug(*httpDbg, cfg.Obs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug server on http://%s (/debug/pprof/, /metricsz) — local profiling only\n", ln.Addr())
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	res, err := castan.Analyze(inst, hier, cfg)
	if err != nil {
		if eventsSink != nil {
			_ = eventsSink.Close() // best-effort flush; the analysis error wins
		}
		fatal(err)
	}
	// The stream is complete once Analyze returns; close (and flush) it
	// before any later exit path can bypass the deferred stack.
	closeEvents()
	if *events != "" {
		fmt.Printf("streamed progress events to %s\n", *events)
	}
	if *trace != "" {
		if err := cfg.Obs.WriteChromeTraceFile(*trace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote pipeline trace to %s\n", *trace)
	}
	if *metrics != "" {
		if err := res.Telemetry.WriteJSONFile(*metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metrics)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	path := *out
	if path == "" {
		path = *nfName + "-castan.pcap"
	}
	if err := pcap.WriteFile(path, res.Frames); err != nil {
		fatal(err)
	}
	w := workload.FromFrames("CASTAN", res.Frames)
	fmt.Printf("wrote %s: %d packets, %d flows\n", path, len(res.Frames), w.Flows)
	fmt.Printf("analysis: %.1fs, %d states explored, %d contention sets, havocs %d/%d reconciled\n",
		res.AnalysisTime.Seconds(), res.StatesExplored, res.ContentionSetsFound,
		res.HavocsReconciled, res.HavocsTotal)
	fmt.Printf("predicted path: %d instrs, %d loads, %d stores, %d expected DRAM trips\n",
		res.Instrs, res.Loads, res.Stores, res.ExpectDRAM)
	if res.StaticCostBound > 0 {
		fmt.Printf("static worst-case bound: %d cycles for %d packets (worst path after %d state pops)\n",
			res.StaticCostBound, len(res.Frames), res.StepsToWorstPath)
	}
	for i, pm := range res.Packets {
		fmt.Printf("  packet %2d: %5d predicted cycles\n", i, pm.Cycles)
	}
	if *report != "" {
		if err := res.WriteReportFile(*report); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics report to %s\n", *report)
	}
	if *validate {
		instrs, err := castan.Validate(*nfName, res.Frames)
		switch {
		case err != nil && res.Degraded():
			// A degraded workload is best-effort by contract; a replay
			// hiccup is information, not a failure.
			fmt.Printf("validation replay failed on degraded workload: %v\n", err)
		case err != nil:
			fatal(fmt.Errorf("validation replay: %w", err))
		default:
			fmt.Printf("validation replay executed %d instructions (prediction: %d)\n", instrs, res.Instrs)
		}
	}
	if res.Degraded() {
		fmt.Printf("DEGRADED: %d stage(s) cut short, %d budget ticks used\n",
			len(res.Degradations), res.BudgetTicksUsed)
		for _, d := range res.Degradations {
			fmt.Printf("  %s: %s; fallback: %s\n", d.Stage, d.Reason, d.Fallback)
		}
		if len(res.UnreconciledSites) > 0 {
			fmt.Printf("  unreconciled hash sites: %v\n", res.UnreconciledSites)
		}
		if *failDeg {
			os.Exit(1)
		}
		os.Exit(3)
	}
}

var paperPackets = map[string]int{
	"lb-chain": 30, "lb-ring": 40, "lb-rbtree": 30, "lb-ubtree": 30,
	"lpm-trie": 30, "lpm-dl1": 40, "lpm-dl2": 40,
	"nat-chain": 30, "nat-ring": 40, "nat-rbtree": 35, "nat-ubtree": 50,
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "castan:", err)
	os.Exit(1)
}

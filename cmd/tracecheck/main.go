// Command tracecheck validates observability artifacts produced by
// cmd/castan and cmd/testbed: that a -trace file matches the Chrome
// trace_event schema the exporter promises (CI runs it on the smoke
// trace before uploading artifacts), and optionally that a -metrics-out
// file carries nonzero values for required counters.
//
// Usage:
//
//	tracecheck -trace out.jsonl
//	tracecheck -trace out.jsonl -metrics metrics.json -require solver.queries,memsim.dram_misses
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"castan/internal/obs"
)

func main() {
	var (
		trace   = flag.String("trace", "", "Chrome trace file to validate")
		metrics = flag.String("metrics", "", "metrics JSON file to validate")
		require = flag.String("require", "", "comma-separated counters that must be present and nonzero in -metrics")
	)
	flag.Parse()
	if *trace == "" && *metrics == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to do; pass -trace and/or -metrics")
		os.Exit(2)
	}
	if *trace != "" {
		n, err := obs.ValidateChromeTraceFile(*trace)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *trace, err))
		}
		fmt.Printf("%s: valid Chrome trace, %d events\n", *trace, n)
	}
	if *metrics != "" {
		f, err := os.Open(*metrics)
		if err != nil {
			fatal(err)
		}
		m, err := obs.ReadMetrics(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *metrics, err))
		}
		if *require != "" {
			for _, name := range strings.Split(*require, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if m.Counters[name] == 0 {
					fatal(fmt.Errorf("%s: required counter %q is missing or zero", *metrics, name))
				}
				fmt.Printf("%s: %s = %d\n", *metrics, name, m.Counters[name])
			}
		}
		fmt.Printf("%s: %d counters, %d gauges, %d histograms, %d phases\n",
			*metrics, len(m.Counters), len(m.Gauges), len(m.Histograms), len(m.Phases))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}

// Command testbed runs the paper's measurement campaign (§5) on the
// simulated DUT: figures (latency / reference-cycle CDFs) and tables
// (throughput, instructions, L3 misses, analysis effort, median latency
// deviations) for any subset of the NFs.
//
// Usage:
//
//	testbed -figure 4             # one figure
//	testbed -table 1 -nfs lpm-dl1,lpm-dl2
//	testbed -all                  # the whole campaign (slow)
//	testbed -nf lb-chain -pcap workload.pcap   # measure a custom PCAP
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"castan/internal/experiments"
	"castan/internal/obs"
	"castan/internal/testbed"
	"castan/internal/workload"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "reproduce one figure (4-15)")
		table    = flag.Int("table", 0, "reproduce one table (1-5)")
		all      = flag.Bool("all", false, "reproduce every table and figure")
		nfs      = flag.String("nfs", "", "comma-separated NF subset for tables")
		seed     = flag.Uint64("seed", 2018, "campaign seed")
		packets  = flag.Int("packets", 0, "Zipfian/UniRand workload size")
		states   = flag.Int("states", 6000, "CASTAN exploration budget")
		nfName   = flag.String("nf", "", "measure one NF under a custom workload")
		pcapIn   = flag.String("pcap", "", "PCAP file with the custom workload")
		mix      = flag.String("mix", "", "run the adversarial-fraction sweep (§5.5 future work) for this NF")
		workers  = flag.Int("workers", 0, "worker count for the campaign (0 = GOMAXPROCS); table cells are identical at any value")
		trace    = flag.String("trace", "", "write a Chrome trace_event file of the campaign's CASTAN analyses to this path")
		metrics  = flag.String("metrics-out", "", "write the campaign's aggregated analysis metrics (JSON) to this path")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		progress = flag.Bool("progress", false, "render live campaign progress on stderr (per-NF analyses interleave: this is live telemetry, not a deterministic stream)")
		httpDbg  = flag.String("httpdebug", "", "serve net/http/pprof and a /metricsz live metrics snapshot on this address (e.g. localhost:6060); local profiling only — never expose beyond localhost")
	)
	flag.Parse()

	if *nfName != "" && *pcapIn != "" {
		measurePCAP(*nfName, *pcapIn, *seed)
		return
	}

	var rec *obs.Recorder
	if *trace != "" || *metrics != "" || *progress || *httpDbg != "" {
		rec = obs.New(nil)
	}
	if *progress {
		rec.Subscribe(obs.NewTTYRenderer(os.Stderr))
	}
	if *httpDbg != "" {
		ln, err := obs.ServeDebug(*httpDbg, rec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug server on http://%s (/debug/pprof/, /metricsz) — local profiling only\n", ln.Addr())
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	c := experiments.NewCampaign(experiments.Config{
		Seed:         *seed,
		Packets:      *packets,
		CastanStates: *states,
		Workers:      *workers,
		Obs:          rec,
	})
	var subset []string
	if *nfs != "" {
		subset = strings.Split(*nfs, ",")
	}

	start := time.Now()
	switch {
	case *mix != "":
		res, err := c.MixedSweep(*mix, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
		fmt.Printf("extra p95 ns per unit adversarial fraction: %.0f\n", res.DamagePerPacket())
	case *figure != 0:
		fig, err := c.Figure(*figure)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig.Render())
	case *table != 0:
		renderTable(c, *table, subset)
	case *all:
		for _, id := range []int{1, 2, 3, 4, 5} {
			renderTable(c, id, subset)
			fmt.Println()
		}
		for _, id := range experiments.FigureIDs() {
			fig, err := c.Figure(id)
			if err != nil {
				fatal(err)
			}
			fmt.Println(fig.Render())
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("(campaign time: %s)\n", experiments.Elapsed(start))
	if *trace != "" {
		if err := rec.WriteChromeTraceFile(*trace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote campaign trace to %s\n", *trace)
	}
	if *metrics != "" {
		if err := rec.Snapshot().WriteJSONFile(*metrics); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote campaign metrics to %s\n", *metrics)
	}
}

func renderTable(c *experiments.Campaign, id int, nfs []string) {
	var (
		t   *experiments.Table
		err error
	)
	switch id {
	case 1:
		t, err = c.Table1(nfs)
	case 2:
		t, err = c.Table2(nfs)
	case 3:
		t, err = c.Table3(nfs)
	case 4:
		t, err = c.Table4(nfs)
	case 5:
		t, err = c.Table5(nfs)
	default:
		fatal(fmt.Errorf("no table %d", id))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(t.Render())
}

func measurePCAP(nfName, path string, seed uint64) {
	wl, err := workload.FromPCAP("custom", path)
	if err != nil {
		fatal(err)
	}
	m, err := testbed.Measure(nfName, wl, testbed.Options{Seed: seed})
	if err != nil {
		fatal(err)
	}
	nop, err := testbed.MeasureNOP(testbed.Options{Seed: seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s under %s (%d packets, %d flows):\n", nfName, path, len(wl.Frames), wl.Flows)
	fmt.Printf("  median latency     %.0f ns (NOP deviation %.0f ns)\n", m.Latency.Median(), m.MedianDeviation(nop))
	fmt.Printf("  median cycles      %.0f\n", m.Cycles.Median())
	fmt.Printf("  median instrs      %.0f\n", m.Instrs.Median())
	fmt.Printf("  median L3 misses   %.0f\n", m.L3Misses.Median())
	fmt.Printf("  max throughput     %.2f Mpps\n", m.ThroughputMpps)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "testbed:", err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"castan/internal/ir"
	"castan/internal/nf"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the -json output for the whole example-NF catalog.
// The document is deterministic (modules in catalog order, functions
// sorted), so any change to the lint findings, the cache classification,
// or the static bounds shows up as a golden diff here.
func TestJSONGolden(t *testing.T) {
	var mods []*ir.Module
	for _, name := range nf.Names {
		inst, err := nf.New(name)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, inst.Mod)
	}
	var buf bytes.Buffer
	if code := run(mods, false, false, true, &buf); code != 0 {
		t.Fatalf("catalog should pass, got exit %d:\n%s", code, buf.String())
	}

	golden := filepath.Join("testdata", "catalog.json.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

// TestJSONShape decodes the -json document and checks the invariants the
// schema promises: every catalog module present, zero errors, cachecost
// stats internally consistent, and at least one function across the
// catalog with a finite static bound and a nonzero always-hit count.
func TestJSONShape(t *testing.T) {
	var mods []*ir.Module
	for _, name := range nf.Names {
		inst, err := nf.New(name)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, inst.Mod)
	}
	var buf bytes.Buffer
	if code := run(mods, false, false, true, &buf); code != 0 {
		t.Fatalf("catalog should pass, got exit %d:\n%s", code, buf.String())
	}
	var doc jsonDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Schema != "castan-irlint/v1" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Modules) != len(nf.Names) {
		t.Fatalf("got %d modules, want %d", len(doc.Modules), len(nf.Names))
	}
	anyHit, anyBound := false, false
	for i, jm := range doc.Modules {
		if jm.Module != nf.Names[i] {
			t.Errorf("module %d = %q, want %q", i, jm.Module, nf.Names[i])
		}
		if jm.Errors != 0 {
			t.Errorf("%s: %d errors in a passing catalog", jm.Module, jm.Errors)
		}
		if len(jm.CacheCost.Functions) == 0 {
			t.Errorf("%s: no cachecost functions", jm.Module)
		}
		for _, jf := range jm.CacheCost.Functions {
			if jf.AlwaysHit+jf.AlwaysMiss+jf.Unclassified != jf.MemInstrs {
				t.Errorf("%s/%s: classes %d+%d+%d != mem_instrs %d", jm.Module, jf.Fn,
					jf.AlwaysHit, jf.AlwaysMiss, jf.Unclassified, jf.MemInstrs)
			}
			if jf.UnclassifiedRatio < 0 || jf.UnclassifiedRatio > 1 {
				t.Errorf("%s/%s: unclassified_ratio %v out of range", jm.Module, jf.Fn, jf.UnclassifiedRatio)
			}
			if jf.AlwaysHit > 0 {
				anyHit = true
			}
			if jf.StaticBound > 0 {
				anyBound = true
			}
		}
	}
	if !anyHit {
		t.Error("no always-hit classification anywhere in the catalog (analysis is vacuous)")
	}
	if !anyBound {
		t.Error("no finite static bound anywhere in the catalog")
	}
}

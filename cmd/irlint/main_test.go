package main

import (
	"bytes"
	"strings"
	"testing"

	"castan/internal/ir"
	"castan/internal/nf"
)

// TestSeedCorpusPasses is the acceptance contract: the gate must accept
// every built-in NF (warnings allowed, errors not).
func TestSeedCorpusPasses(t *testing.T) {
	var mods []*ir.Module
	for _, name := range nf.Names {
		inst, err := nf.New(name)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, inst.Mod)
	}
	var buf bytes.Buffer
	if code := run(mods, false, false, false, &buf); code != 0 {
		t.Fatalf("seed corpus should pass, got exit %d:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "0 error(s)") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

// TestDefBeforeUseFixtureFails: a module reading a never-defined register
// must make irlint exit non-zero.
func TestDefBeforeUseFixtureFails(t *testing.T) {
	mod := ir.NewModule("fixture-defuse")
	fb := mod.NewFunc("nf_process", 2)
	bogus := fb.NewReg()
	fb.Ret(fb.AddImm(bogus, 1))
	fb.Seal()
	mod.Layout()

	var buf bytes.Buffer
	if code := run([]*ir.Module{mod}, false, false, false, &buf); code == 0 {
		t.Fatalf("def-before-use fixture should fail:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "possibly-undefined") {
		t.Fatalf("missing defuse diagnostic:\n%s", buf.String())
	}
}

// TestOutOfExtentFixtureFails: a module with a definite out-of-bounds
// store must make irlint exit non-zero.
func TestOutOfExtentFixtureFails(t *testing.T) {
	mod := ir.NewModule("fixture-extent")
	g := mod.AddGlobal("tbl", 128, 0)
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	fb.Store(fb.GlobalAddr(g), 128, fb.Const(1), 4)
	fb.RetImm(0)
	fb.Seal()

	var buf bytes.Buffer
	if code := run([]*ir.Module{mod}, false, false, false, &buf); code == 0 {
		t.Fatalf("out-of-extent fixture should fail:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "out of extent") {
		t.Fatalf("missing memregion diagnostic:\n%s", buf.String())
	}
}

// TestWerrorPromotesWarnings: lpm-dl2's data-dependent stage-2 index is a
// warning by default and a failure under -werror.
func TestWerrorPromotesWarnings(t *testing.T) {
	inst, err := nf.New("lpm-dl2")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code := run([]*ir.Module{inst.Mod}, false, false, false, &buf); code != 0 {
		t.Fatalf("lpm-dl2 should pass by default:\n%s", buf.String())
	}
	if code := run([]*ir.Module{inst.Mod}, false, true, false, &buf); code != 1 {
		t.Fatalf("lpm-dl2 should fail under -werror, got %d", code)
	}
}

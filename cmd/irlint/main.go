// irlint runs the full static-analysis pass pipeline (structural
// validation, def-before-use, register liveness, memory-region extent
// checks) over IR modules and reports structured findings. It is the CI
// gate that keeps every built-in NF — and therefore every module the
// examples run — clean before symbolic execution ever sees it.
//
//	irlint             # lint every NF in the built-in catalog
//	irlint lpm-trie    # lint selected NFs
//	irlint -v          # also print info-level findings (dead defs)
//	irlint -werror     # treat warnings as failures
//
// Exit status is non-zero iff any module produced an error-level finding
// (or, with -werror, a warning).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"castan/internal/analysis"
	"castan/internal/ir"
	"castan/internal/nf"
)

func main() {
	verbose := flag.Bool("v", false, "print info-level findings too")
	werror := flag.Bool("werror", false, "treat warnings as errors")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = nf.Names
	}
	var mods []*ir.Module
	for _, name := range names {
		inst, err := nf.New(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
			os.Exit(1)
		}
		mods = append(mods, inst.Mod)
	}
	os.Exit(run(mods, *verbose, *werror, os.Stdout))
}

// run lints each module in turn and returns the process exit code: 1 if
// any module has an error-level finding (or a warning under werror),
// 0 otherwise.
func run(mods []*ir.Module, verbose, werror bool, w io.Writer) int {
	minSev := analysis.SevWarn
	if verbose {
		minSev = analysis.SevInfo
	}
	failed := false
	for _, mod := range mods {
		rep := analysis.Lint(mod, analysis.Options{
			EntryHints: analysis.NFEntryHints(),
			NoDeadDefs: !verbose,
		})
		if err := rep.Write(w, minSev); err != nil {
			fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
			return 2
		}
		if rep.HasErrors() || (werror && rep.Count(analysis.SevWarn) > 0) {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

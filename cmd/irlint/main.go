// irlint runs the full static-analysis pass pipeline (structural
// validation, def-before-use, register liveness, memory-region extent
// checks) over IR modules and reports structured findings. It is the CI
// gate that keeps every built-in NF — and therefore every module the
// examples run — clean before symbolic execution ever sees it.
//
//	irlint             # lint every NF in the built-in catalog
//	irlint lpm-trie    # lint selected NFs
//	irlint -v          # also print info-level findings (dead defs)
//	irlint -werror     # treat warnings as failures
//	irlint -json       # machine-readable output (includes cachecost stats)
//
// With -json the output is a single castan-irlint/v1 document: per module,
// the findings (each carrying source coordinates: function, block index,
// instruction index) plus the abstract cache analysis's classification
// summary (always-hit / always-miss / unclassified counts and the
// unclassified ratio per function).
//
// Structurally clean modules additionally get the input-taint dataflow
// pass: adversary-controllability findings flag every load/store whose
// address the input controls — ranked by whether the access stays
// cache-resident or reaches a DRAM-cost region — and classify each hash
// site's key as input-independent or adversary-controlled.
//
// Exit status is non-zero iff any module produced an error-level finding
// (or, with -werror, a warning).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"castan/internal/analysis"
	"castan/internal/analysis/cachecost"
	"castan/internal/analysis/taint"
	"castan/internal/analysis/vrange"
	"castan/internal/ir"
	"castan/internal/nf"
)

func main() {
	verbose := flag.Bool("v", false, "print info-level findings too")
	werror := flag.Bool("werror", false, "treat warnings as errors")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (castan-irlint/v1)")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = nf.Names
	}
	var mods []*ir.Module
	for _, name := range names {
		inst, err := nf.New(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
			os.Exit(1)
		}
		mods = append(mods, inst.Mod)
	}
	os.Exit(run(mods, *verbose, *werror, *jsonOut, os.Stdout))
}

// jsonDoc is the -json output: one castan-irlint/v1 document.
type jsonDoc struct {
	Schema  string       `json:"schema"`
	Modules []jsonModule `json:"modules"`
}

type jsonModule struct {
	Module    string        `json:"module"`
	Errors    int           `json:"errors"`
	Warnings  int           `json:"warnings"`
	Findings  []jsonFinding `json:"findings"`
	CacheCost jsonCacheCost `json:"cachecost"`
}

type jsonFinding struct {
	Sev  string `json:"sev"`
	Pass string `json:"pass"`
	Ref  string `json:"ref"`
	// Source coordinates of the program point Ref renders: the function
	// name ("" for module-level findings), the block index within the
	// function, and the instruction index within the block (-1 when the
	// finding anchors to a whole function or block).
	Fn    string `json:"fn"`
	Block int    `json:"block"`
	Instr int    `json:"instr"`
	Msg   string `json:"msg"`
}

type jsonCacheCost struct {
	Geometry  jsonGeometry   `json:"geometry"`
	Functions []jsonFuncCost `json:"functions"`
}

type jsonGeometry struct {
	Ways      int `json:"ways"`
	LineBytes int `json:"line_bytes"`
}

type jsonFuncCost struct {
	Fn                string  `json:"fn"`
	MemInstrs         int     `json:"mem_instrs"`
	AlwaysHit         int     `json:"always_hit"`
	AlwaysMiss        int     `json:"always_miss"`
	Unclassified      int     `json:"unclassified"`
	UnclassifiedRatio float64 `json:"unclassified_ratio"`
	// StaticBound is the whole-function worst-case cycle bound; absent
	// when a data-dependent loop leaves the function unbounded.
	StaticBound uint64 `json:"static_bound,omitempty"`
	AcyclicPath uint64 `json:"acyclic_path_bound"`
}

// run lints each module in turn and returns the process exit code: 1 if
// any module has an error-level finding (or a warning under werror),
// 0 otherwise.
func run(mods []*ir.Module, verbose, werror, jsonOut bool, w io.Writer) int {
	minSev := analysis.SevWarn
	if verbose {
		minSev = analysis.SevInfo
	}
	doc := jsonDoc{Schema: "castan-irlint/v1"}
	failed := false
	for _, mod := range mods {
		rep := analysis.Lint(mod, analysis.Options{
			EntryHints: analysis.NFEntryHints(),
			NoDeadDefs: !verbose,
		})
		// Structurally clean modules get the cache-cost summary and the
		// taint controllability pass; their findings merge into the lint
		// report (deduplicated — taint flags accesses the extent checks
		// may already have mentioned) before counting and rendering.
		var cc *cachecost.Analysis
		if !rep.HasErrors() {
			mf := analysis.ForModule(mod)
			mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
			cc = cachecost.Run(mf, mr, cachecost.Config{Geometry: cachecost.DefaultGeometry()})
			ta := taint.Run(mf, mr, taint.Config{EntryHints: taint.NFEntryTaints()})
			rep.Findings = append(rep.Findings, ta.Controllability(cc)...)
			vr := vrange.Run(mf, vrange.Config{EntryHints: vrange.NFEntryRanges()})
			rep.Findings = append(rep.Findings, vr.Findings()...)
			rep.Dedup()
			rep.Sort()
		}
		if jsonOut {
			doc.Modules = append(doc.Modules, jsonify(mod, rep, minSev, cc))
		} else if err := rep.Write(w, minSev); err != nil {
			fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
			return 2
		}
		if rep.HasErrors() || (werror && rep.Count(analysis.SevWarn) > 0) {
			failed = true
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "irlint: %v\n", err)
			return 2
		}
	}
	if failed {
		return 1
	}
	return 0
}

// jsonify packages one module's report plus its cache-classification
// summary. cc is the caller's cache analysis at the default geometry (the
// simulated L3's associativity and line size) with no contention-set
// model — the most conservative classification, which is the right
// baseline for a lint gate; nil when the module had errors.
func jsonify(mod *ir.Module, rep *analysis.Report, minSev analysis.Severity, cc *cachecost.Analysis) jsonModule {
	jm := jsonModule{
		Module:   rep.Module,
		Errors:   rep.Count(analysis.SevError),
		Warnings: rep.Count(analysis.SevWarn),
		Findings: []jsonFinding{},
	}
	for _, f := range rep.Findings {
		if f.Sev > minSev {
			continue
		}
		jf := jsonFinding{
			Sev:   f.Sev.String(),
			Pass:  f.Pass,
			Ref:   f.Ref(),
			Block: -1,
			Instr: -1,
			Msg:   f.Msg,
		}
		if f.Fn != nil {
			jf.Fn = f.Fn.Name
		}
		if f.Block != nil {
			jf.Block = f.Block.Index
			jf.Instr = f.InstrIdx
		}
		jm.Findings = append(jm.Findings, jf)
	}
	geo := cachecost.DefaultGeometry()
	jm.CacheCost.Geometry = jsonGeometry{Ways: geo.Ways, LineBytes: geo.LineBytes}
	jm.CacheCost.Functions = []jsonFuncCost{}
	if cc == nil {
		// A structurally broken module would feed garbage to the abstract
		// interpreter; findings alone are the story here.
		return jm
	}
	for _, name := range cc.FuncNames() {
		f := mod.Funcs[name]
		st := cc.FuncStats(f)
		jf := jsonFuncCost{
			Fn:                name,
			MemInstrs:         st.Mem,
			AlwaysHit:         st.AlwaysHit,
			AlwaysMiss:        st.AlwaysMiss,
			Unclassified:      st.Unclassified,
			UnclassifiedRatio: math.Round(st.UnclassifiedRatio()*10000) / 10000,
			AcyclicPath:       cc.AcyclicPathBound(f),
		}
		if b, ok := cc.FuncBound(f); ok {
			jf.StaticBound = b
		}
		jm.CacheCost.Functions = append(jm.CacheCost.Functions, jf)
	}
	return jm
}

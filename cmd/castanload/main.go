// Command castanload is the deterministic load generator for castand: it
// replays a seeded mix of analysis requests — mixed NFs, tenants,
// priorities, tiny budgets that force degradation, and (against a -chaos
// server) injected fault plans — through a bounded worker pool, retries
// admission pushback (429) with internal/retry backoff, and validates
// every 200 against the Report schema gate.
//
// Exit code 0 means the service upheld its contract under this load:
// zero 5xx responses surviving retries, zero transport errors, zero
// invalid reports. 429s are not failures — they are the backpressure the
// server is supposed to apply — but they are counted and reported.
//
// Usage:
//
//	castanload -url http://127.0.0.1:8347 -n 50 -c 8 -seed 1
//	castanload -addr-file /tmp/castand.addr -n 200 -tiny-budget-frac 0.3 -fault-frac 0.2
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"castan/internal/castan"
	"castan/internal/faultinject"
	"castan/internal/parallel"
	"castan/internal/retry"
	"castan/internal/service"
	"castan/internal/stats"
)

// Summary is the machine-readable run verdict (written to -out).
type Summary struct {
	Sent       int            `json:"sent"`
	OK         int            `json:"ok"`
	Degraded   int            `json:"degraded"`
	CacheHits  int            `json:"cache_hits"`
	Retries    int            `json:"retries"`
	Rejected   int            `json:"rejected_429"`
	Failed     int            `json:"failed"`
	Invalid    int            `json:"invalid_reports"`
	ByStatus   map[string]int `json:"by_status"`
	DurationMS int64          `json:"duration_ms"`
}

func main() {
	var (
		baseURL   = flag.String("url", "", "castand base URL (e.g. http://127.0.0.1:8347)")
		addrFile  = flag.String("addr-file", "", "read the server address from this file (castand -addr-file)")
		n         = flag.Int("n", 50, "number of requests")
		c         = flag.Int("c", 8, "client concurrency")
		seed      = flag.Uint64("seed", 1, "request-mix seed")
		nfList    = flag.String("nfs", "nop,lpm-trie,nat-chain", "comma-separated NF mix")
		packets   = flag.Int("packets", 4, "workload length per request")
		states    = flag.Int("states", 1200, "exploration budget per request")
		tinyFrac  = flag.Float64("tiny-budget-frac", 0.2, "fraction of requests with a tiny tick budget (forces degradation)")
		faultFrac = flag.Float64("fault-frac", 0, "fraction of requests arming a faultinject.MatrixPlans entry (server must run -chaos)")
		keyFrac   = flag.Float64("key-frac", 0.2, "fraction of requests sharing idempotency keys")
		tenants   = flag.Int("tenants", 3, "tenant pool size")
		retries   = flag.Int("retries", 5, "attempts per request on 429/503")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-attempt HTTP timeout")
		outPath   = flag.String("out", "", "write the JSON summary here too")
	)
	flag.Parse()

	base := *baseURL
	if base == "" && *addrFile != "" {
		data, err := os.ReadFile(*addrFile)
		if err != nil {
			fatal(err)
		}
		base = "http://" + strings.TrimSpace(string(data))
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "castanload: one of -url or -addr-file is required")
		os.Exit(2)
	}
	nfs := strings.Split(*nfList, ",")
	planNames := []string{}
	for _, p := range faultinject.MatrixPlans() {
		planNames = append(planNames, p.Name)
	}

	// The request mix is a pure function of the seed: request i draws
	// from its own split stream, so the mix is stable under -c.
	reqs := make([]service.Request, *n)
	rng := stats.NewRNG(*seed)
	for i := range reqs {
		r := stats.NewRNG(parallel.ShardSeed(rng.Uint64(), i))
		req := service.Request{
			NF:        nfs[r.Intn(len(nfs))],
			Packets:   *packets,
			MaxStates: *states,
			Seed:      uint64(i + 1),
			Tenant:    fmt.Sprintf("tenant-%d", r.Intn(*tenants)),
			Priority:  r.Intn(3),
		}
		if r.Float64() < *tinyFrac {
			req.Budget = 200 // small enough to cut any analysis short
		}
		if *faultFrac > 0 && r.Float64() < *faultFrac {
			req.Fault = planNames[r.Intn(len(planNames))]
		}
		if r.Float64() < *keyFrac {
			// A small key pool guarantees collisions: the single-flight
			// and report-cache paths get real traffic.
			req.Key = fmt.Sprintf("load-key-%d", r.Intn(4))
			req.Seed = uint64(r.Intn(2)) // keys must agree with params
		}
		reqs[i] = req
	}

	client := &http.Client{Timeout: *timeout}
	var mu sync.Mutex
	sum := Summary{Sent: *n, ByStatus: map[string]int{}}
	start := time.Now()

	parallel.ForEach(*c, *n, func(i int) {
		req := reqs[i]
		policy := retry.Policy{
			Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2,
			Jitter: 0.3, Seed: parallel.ShardSeed(*seed, i), Attempts: *retries,
		}
		var final int
		var rep *castan.Report
		var cacheHit bool
		err := retry.Do(context.Background(), policy, func(attempt int) error {
			if attempt > 0 {
				mu.Lock()
				sum.Retries++
				mu.Unlock()
			}
			status, report, hit, err := post(client, base, req)
			final, rep, cacheHit = status, report, hit
			switch {
			case err != nil:
				return err
			case status == 200:
				return nil
			case status == 429 || status == 503:
				// Backpressure and transient unavailability: retry under
				// the policy's backoff (respecting the spirit of
				// Retry-After; the policy's schedule dominates it here).
				return fmt.Errorf("status %d", status)
			default:
				// 4xx and 5xx beyond pushback cannot be fixed by retrying.
				return retry.Stop(fmt.Errorf("status %d", status))
			}
		})
		mu.Lock()
		defer mu.Unlock()
		sum.ByStatus[fmt.Sprint(final)]++
		if err != nil {
			if final == 429 {
				sum.Rejected++
			}
			sum.Failed++
			fmt.Fprintf(os.Stderr, "castanload: request %d (%s): %v\n", i, req.NF, err)
			return
		}
		sum.OK++
		if cacheHit {
			sum.CacheHits++
		}
		if cerr := rep.Check(req.NF); cerr != nil {
			sum.Invalid++
			fmt.Fprintf(os.Stderr, "castanload: request %d: invalid report: %v\n", i, cerr)
			return
		}
		if len(rep.Degradations) > 0 {
			sum.Degraded++
		}
	})
	sum.DurationMS = time.Since(start).Milliseconds()

	data, _ := json.MarshalIndent(sum, "", " ")
	fmt.Println(string(data))
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if sum.Failed > 0 || sum.Invalid > 0 {
		os.Exit(1)
	}
}

// post sends one request and decodes a 200 into a Report.
func post(client *http.Client, base string, req service.Request) (int, *castan.Report, bool, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, false, err
	}
	resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, nil, false, nil
	}
	rep, err := castan.ReadReport(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, false, err
	}
	return 200, rep, resp.Header.Get("X-Castan-Cache") == "hit", nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "castanload:", err)
	os.Exit(1)
}

// Command telemetrycatalog generates docs/TELEMETRY.md: the catalog of
// every counter, gauge, histogram and phase the pipeline emits, with
// unit, owning package, stage attribution and perf-gate relevance.
//
// The catalog is generated, not hand-maintained: the tool runs a small
// set of instrumented analyses chosen to light up every instrument
// family — a discovery-heavy NF twice through one artifact store (store
// hits and misses), a rainbow-reconciling NF, and a budget-cut degraded
// run — and documents exactly the names that appeared. A name that
// stops being emitted falls out of the catalog on the next
// `make telemetry-catalog`; a new undocumented name shows up flagged so
// the description table in this file gets extended.
//
// Usage:
//
//	telemetrycatalog -out docs/TELEMETRY.md
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"castan/internal/budget"
	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
	"castan/internal/obs/tracediff"
	"castan/internal/store"
)

// meta documents one metric name. Names the sample runs emit but this
// table misses are still cataloged, marked "(undocumented)".
type meta struct{ unit, desc string }

var counterMeta = map[string]meta{
	"cachecost.fixpoint_iterations": {"iterations", "abstract cache-state fixpoint passes until the per-block may/must sets converge"},
	"castan.contention_sets":        {"sets", "cache contention sets the discovery stage (or a store hit) produced"},
	"castan.degraded.symbex":        {"cuts", "symbex stage cut short by a budget/deadline (one per degradation; the castan.degraded.<stage> family covers every stage)"},
	"castan.havocs":                 {"sites", "havoced hash sites the symbolic path depends on"},
	"castan.havocs_reconciled":      {"sites", "havoc sites the rainbow stage concretized back to real packet bytes"},
	"castan.reconcile_checks":       {"replays", "reconciliation validation replays of candidate concretizations"},
	"castan.store.hits":             {"artifacts", "cross-run store lookups that returned a reusable artifact (skipping discovery/table builds)"},
	"castan.store.misses":           {"artifacts", "store lookups that found nothing and fell through to a fresh computation"},
	"castan.store.writes":           {"artifacts", "freshly computed artifacts persisted for future runs"},
	"memsim.accesses":               {"accesses", "memory-hierarchy accesses simulated (loads, stores and probe reads)"},
	"memsim.dram_misses":            {"accesses", "accesses that missed every cache level and paid the DRAM latency"},
	"memsim.l1_hits":                {"accesses", "accesses served by the L1 model"},
	"memsim.l2_hits":                {"accesses", "accesses served by the L2 model"},
	"memsim.l3_hits":                {"accesses", "accesses served by the L3 model"},
	"memsim.l3_evictions":           {"lines", "L3 lines evicted by simulated accesses"},
	"memsim.probe_calls":            {"probes", "timing-probe invocations during contention-set discovery"},
	"memsim.probe_line_reads":       {"lines", "cache lines touched by discovery probes — the discovery-effort gate column"},
	"obs.sub.dropped":               {"events", "progress events a bounded subscriber (obs.ChanSub) discarded because its buffer was full — a slow-consumer signal, deliberately not a gate column"},
	"rainbow.bruteforce_calls":      {"calls", "hash inversions that fell back to bounded brute force"},
	"rainbow.chains":                {"chains", "rainbow-table chains built for hash inversion"},
	"rainbow.invert_attempts":       {"lookups", "rainbow-table inversion lookups attempted"},
	"rainbow.invert_keys":           {"keys", "hash preimages recovered by table lookup or brute force"},
	"rainbow.tables":                {"tables", "rainbow tables built (or loaded from the store) this run"},
	"solver.backtracks":             {"backtracks", "constraint-solver search backtracks"},
	"solver.hint_hits":              {"queries", "solver queries answered from the warm-start hint cache"},
	"solver.memo_hits":              {"queries", "queries discharged without search by the memo (cached Unsat or range-probed model)"},
	"solver.memo_misses":            {"queries", "memo-eligible queries that fell through to a full search"},
	"solver.propagation_rounds":     {"rounds", "constraint-propagation rounds across all queries"},
	"solver.queries":                {"queries", "satisfiability queries issued by symbolic execution"},
	"solver.queries_avoided":        {"queries", "queries skipped by the constraint-subsumption fold"},
	"solver.queries_sat":            {"queries", "queries that came back satisfiable"},
	"symbex.done_states":            {"states", "symbolic states that ran to path completion"},
	"symbex.folded_instructions":    {"instructions", "instructions skipped by straight-line folding"},
	"symbex.forks":                  {"states", "state forks at symbolic branches"},
	"symbex.instructions":           {"instructions", "IR instructions symbolically executed"},
	"symbex.merged_states":          {"states", "popped states dropped as duplicates at value-range merge points"},
	"symbex.pruned_edges":           {"edges", "conditional-branch edges skipped as infeasible by value-range analysis"},
	"symbex.state_pops":             {"states", "states popped off the priority queue (the searcher's step count)"},
	"symbex.states_explored":        {"states", "distinct states explored before the budget or queue ran out"},
	"symbex.trapped_states":         {"states", "states terminated by an IR trap"},
}

var gaugeMeta = map[string]meta{
	"symbex.queue_depth": {"states", "current/peak size of the symbex priority queue"},
}

var histMeta = map[string]meta{
	"solver.query_ns":         {"ns", "per-query solver latency (wall clock; indicative, never gated)"},
	"solver.steps_per_query":  {"steps", "solver search steps per query"},
	"symbex.path_constraints": {"constraints", "path-condition size at state completion"},
	"symbex.static_potential": {"cycles", "static worst-case cost potential of popped states (the search-priority signal)"},
}

var phaseMeta = map[string]meta{
	"castan.analyze":    {"ns", "whole-pipeline root span"},
	"castan.static":     {"ns", "IR static analysis and lint pass"},
	"castan.discover":   {"ns", "cache contention-set discovery (probe campaign)"},
	"castan.cachecost":  {"ns", "abstract cache-cost fixpoint over the ICFG"},
	"castan.icfg":       {"ns", "interprocedural CFG construction"},
	"castan.symbex":     {"ns", "symbolic exploration for the worst path"},
	"castan.reconcile":  {"ns", "havoc reconciliation via rainbow tables"},
	"castan.crosscheck": {"ns", "interpreter replay cross-check of the emitted workload"},
}

// sample runs every instrument family: two store-backed discovery-heavy
// runs (cold then warm), a rainbow-reconciling NF, and a budget-cut
// degraded run, all under the fake clock so regeneration is stable.
func sample(storeDir string) (*obs.Metrics, error) {
	rec := obs.New(obs.NewFakeClock(1000))
	// A deliberately tiny, never-drained subscriber so the sample also
	// exercises the slow-consumer drop path (obs.sub.dropped).
	sub := obs.NewChanSub(1)
	sub.CountDrops(rec.Counter(obs.SubDroppedCounter))
	rec.Subscribe(sub)
	st, err := store.Open(storeDir)
	if err != nil {
		return nil, err
	}
	run := func(name string, st *store.Store, degrade bool) error {
		inst, err := nf.New(name)
		if err != nil {
			return err
		}
		cfg := castan.Config{NPackets: 8, MaxStates: 3000, Seed: 2018, Obs: rec, Store: st}
		if degrade {
			m := budget.New(0)
			m.SetStageLimit(budget.StageSymbex, 8)
			cfg.Budget = m
		}
		_, err = castan.Analyze(inst, memsim.New(memsim.DefaultGeometry(), 2018), cfg)
		return err
	}
	for _, r := range []struct {
		nf      string
		st      *store.Store
		degrade bool
	}{
		{"lpm-dl1", st, false},
		{"lpm-dl1", st, false},
		{"lb-chain", nil, false},
		{"lb-chain", nil, true},
	} {
		if err := run(r.nf, r.st, r.degrade); err != nil {
			return nil, fmt.Errorf("%s: %w", r.nf, err)
		}
	}
	return rec.Snapshot(), nil
}

func owner(name string) string {
	pkg := name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		pkg = name[:i]
	}
	switch pkg {
	case "castan":
		return "internal/castan"
	case "memsim":
		return "internal/memsim"
	case "cachecost":
		return "internal/cachecost"
	case "cachemodel":
		return "internal/cachemodel"
	case "symbex":
		return "internal/symbex"
	case "solver":
		return "internal/solver"
	case "rainbow":
		return "internal/rainbow"
	default:
		return "internal/" + pkg
	}
}

func describe(table map[string]meta, name string) meta {
	if m, ok := table[name]; ok {
		return m
	}
	return meta{"—", "(undocumented — extend cmd/telemetrycatalog's description table)"}
}

func render(w *strings.Builder, m *obs.Metrics) {
	fmt.Fprintf(w, "# Telemetry catalog\n\n")
	fmt.Fprintf(w, "Generated by `make telemetry-catalog` (cmd/telemetrycatalog) from\n")
	fmt.Fprintf(w, "instrumented sample analyses — do not edit by hand. Regenerate after\n")
	fmt.Fprintf(w, "adding or renaming an instrument.\n\n")
	fmt.Fprintf(w, "Counters marked **gated** are the perf gate's columns\n")
	fmt.Fprintf(w, "(`obs.GateCounters`, diffed by `cmd/benchmetrics -compare` and\n")
	fmt.Fprintf(w, "attributed on failure by `cmd/tracediff`): deterministic work-item\n")
	fmt.Fprintf(w, "counts, bit-identical across machines and worker counts for a fixed\n")
	fmt.Fprintf(w, "(nf, packets, states, seed). Phase durations and the `*_ns` histogram\n")
	fmt.Fprintf(w, "come from the wall clock and are never gated.\n\n")

	fmt.Fprintf(w, "## Counters\n\n")
	fmt.Fprintf(w, "| Counter | Unit | Owner | Stage | Gated | What it counts |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
	names := make([]string, 0, len(m.Counters))
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := describe(counterMeta, n)
		gate := ""
		if obs.GateCounter(n) {
			gate = "**gated**"
		}
		fmt.Fprintf(w, "| `%s` | %s | %s | %s | %s | %s |\n", n, d.unit, owner(n), tracediff.StageOf(n), gate, d.desc)
	}
	fmt.Fprintf(w, "\nThe `castan.degraded.<stage>` family (one counter per pipeline stage)\n")
	fmt.Fprintf(w, "appears only on runs where a budget or deadline cut that stage short;\n")
	fmt.Fprintf(w, "the sample degraded run lights up the symbex member.\n\n")

	fmt.Fprintf(w, "## Gauges\n\n")
	fmt.Fprintf(w, "| Gauge | Unit | Owner | What it tracks |\n|---|---|---|---|\n")
	names = names[:0]
	for n := range m.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := describe(gaugeMeta, n)
		fmt.Fprintf(w, "| `%s` | %s | %s | %s |\n", n, d.unit, owner(n), d.desc)
	}

	fmt.Fprintf(w, "\n## Histograms\n\n")
	fmt.Fprintf(w, "| Histogram | Unit | Owner | What it observes |\n|---|---|---|---|\n")
	names = names[:0]
	for n := range m.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := describe(histMeta, n)
		fmt.Fprintf(w, "| `%s` | %s | %s | %s |\n", n, d.unit, owner(n), d.desc)
	}

	fmt.Fprintf(w, "\n## Phases (span names)\n\n")
	fmt.Fprintf(w, "Pipeline-order spans; durations are wall-clock (fake-clock ticks under\n")
	fmt.Fprintf(w, "test) and feed `cmd/tracediff`'s attribution and critical-path output.\n\n")
	fmt.Fprintf(w, "| Phase | What it covers |\n|---|---|\n")
	for _, p := range m.Phases {
		d := describe(phaseMeta, p.Name)
		fmt.Fprintf(w, "| `%s` | %s |\n", p.Name, d.desc)
	}

	fmt.Fprintf(w, "\n## Progress events\n\n")
	fmt.Fprintf(w, "The live event bus (`castan -progress`, `-events`) publishes four\n")
	fmt.Fprintf(w, "`ProgressEvent` kinds — `stage_begin`, `stage_end` (with the gate\n")
	fmt.Fprintf(w, "counters' deltas for that stage), `progress` (batch done/total) and\n")
	fmt.Fprintf(w, "`note` (degradations) — sequence-numbered at single-goroutine\n")
	fmt.Fprintf(w, "orchestration points so the stream is byte-identical at any worker\n")
	fmt.Fprintf(w, "count. See DESIGN.md decision 13.\n")
}

func main() {
	out := flag.String("out", "docs/TELEMETRY.md", "output path (- for stdout)")
	flag.Parse()
	dir, err := os.MkdirTemp("", "telemetrycatalog-store-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	m, err := sample(dir)
	if err != nil {
		fatal(err)
	}
	var b strings.Builder
	render(&b, m)
	if *out == "-" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d counters, %d gauges, %d histograms, %d phases)\n",
		*out, len(m.Counters), len(m.Gauges), len(m.Histograms), len(m.Phases))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telemetrycatalog:", err)
	os.Exit(1)
}

// Command reportcheck validates a castan metrics report (JSON): the file
// must decode against the report schema, carry a well-formed packet list,
// and (optionally) match an expected NF. With -require-degraded it
// additionally asserts the run recorded stage degradations and a budget
// tick account — the CI fault-smoke gate uses this to prove a budget-cut
// run still emits a complete, parseable report.
//
// Usage:
//
//	reportcheck -report report.json -nf lpm-trie -require-degraded
package main

import (
	"flag"
	"fmt"
	"os"

	"castan/internal/castan"
)

func main() {
	var (
		path   = flag.String("report", "", "report JSON path")
		nfName = flag.String("nf", "", "expected NF name (optional)")
		reqDeg = flag.Bool("require-degraded", false, "fail unless the report records degradations and budget ticks")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "reportcheck: -report is required")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rep, err := castan.ReadReport(f)
	if err != nil {
		fatal(err)
	}
	if *nfName != "" && rep.NF != *nfName {
		fatal(fmt.Errorf("report is for NF %q, want %q", rep.NF, *nfName))
	}
	if len(rep.Packets) == 0 {
		fatal(fmt.Errorf("report carries no packets"))
	}
	for i, p := range rep.Packets {
		if p.Index != i {
			fatal(fmt.Errorf("packet %d has index %d", i, p.Index))
		}
	}
	if *reqDeg {
		if len(rep.Degradations) == 0 {
			fatal(fmt.Errorf("no degradations recorded; expected a budget-cut run"))
		}
		for _, d := range rep.Degradations {
			if d.Stage == "" || d.Reason == "" || d.Fallback == "" {
				fatal(fmt.Errorf("incomplete degradation record %+v", d))
			}
		}
		if rep.BudgetTicksUsed == 0 {
			fatal(fmt.Errorf("budget_ticks_used is zero on a budget-cut run"))
		}
	}
	fmt.Printf("reportcheck: %s ok (nf %s, %d packets, %d degradations, %d ticks)\n",
		*path, rep.NF, len(rep.Packets), len(rep.Degradations), rep.BudgetTicksUsed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reportcheck:", err)
	os.Exit(1)
}

// Command reportcheck validates a castan metrics report (JSON): the file
// must decode against the report schema, carry a well-formed packet list,
// and (optionally) match an expected NF. With -require-degraded it
// additionally asserts the run recorded stage degradations and a budget
// tick account — the CI fault-smoke gate uses this to prove a budget-cut
// run still emits a complete, parseable report. With -compare it asserts
// a second report describes the identical analysis outcome: every field
// must match except wall-clock time and the telemetry snapshot, which
// legitimately differ between runs (e.g. a warm-store run skips
// discovery effort). The CI store-smoke gate uses this to prove a warm
// store changes effort, never output. With -url the report is fetched
// from a running castand endpoint instead of a file, so the service
// smoke test reuses the same schema gate as offline runs.
//
// Usage:
//
//	reportcheck -report report.json -nf lpm-trie -require-degraded
//	reportcheck -report cold.json -compare warm.json
//	reportcheck -url 'http://127.0.0.1:8080/v1/analyze?nf=lpm-trie&packets=4'
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"castan/internal/castan"
)

func main() {
	var (
		path    = flag.String("report", "", "report JSON path")
		url     = flag.String("url", "", "fetch the report from a castand endpoint instead of a file")
		nfName  = flag.String("nf", "", "expected NF name (optional)")
		reqDeg  = flag.Bool("require-degraded", false, "fail unless the report records degradations and budget ticks")
		compare = flag.String("compare", "", "second report that must describe the identical outcome (only analysis_seconds and telemetry may differ)")
		timeout = flag.Duration("timeout", 2*time.Minute, "HTTP timeout for -url fetches")
	)
	flag.Parse()
	if (*path == "") == (*url == "") {
		fmt.Fprintln(os.Stderr, "reportcheck: exactly one of -report or -url is required")
		os.Exit(2)
	}
	var (
		rep *castan.Report
		src string
		err error
	)
	if *url != "" {
		src = *url
		rep, err = fetch(*url, *timeout)
	} else {
		src = *path
		rep, err = load(*path)
	}
	if err != nil {
		fatal(err)
	}
	if *compare != "" {
		other, err := load(*compare)
		if err != nil {
			fatal(err)
		}
		if !rep.SameOutcome(other) {
			fatal(fmt.Errorf("%s and %s describe different outcomes (beyond analysis_seconds/telemetry)", src, *compare))
		}
		fmt.Printf("reportcheck: %s and %s describe the identical outcome\n", src, *compare)
	}
	if err := rep.Check(*nfName); err != nil {
		fatal(err)
	}
	if *reqDeg {
		if len(rep.Degradations) == 0 {
			fatal(fmt.Errorf("no degradations recorded; expected a budget-cut run"))
		}
		if rep.BudgetTicksUsed == 0 {
			fatal(fmt.Errorf("budget_ticks_used is zero on a budget-cut run"))
		}
	}
	fmt.Printf("reportcheck: %s ok (nf %s, %d packets, %d degradations, %d ticks)\n",
		src, rep.NF, len(rep.Packets), len(rep.Degradations), rep.BudgetTicksUsed)
}

func load(path string) (*castan.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return castan.ReadReport(f)
}

func fetch(url string, timeout time.Duration) (*castan.Report, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return castan.ReadReport(resp.Body)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reportcheck:", err)
	os.Exit(1)
}

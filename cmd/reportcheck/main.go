// Command reportcheck validates a castan metrics report (JSON): the file
// must decode against the report schema, carry a well-formed packet list,
// and (optionally) match an expected NF. With -require-degraded it
// additionally asserts the run recorded stage degradations and a budget
// tick account — the CI fault-smoke gate uses this to prove a budget-cut
// run still emits a complete, parseable report. With -compare it asserts
// a second report describes the identical analysis outcome: every field
// must match except wall-clock time and the telemetry snapshot, which
// legitimately differ between runs (e.g. a warm-store run skips
// discovery effort). The CI store-smoke gate uses this to prove a warm
// store changes effort, never output.
//
// Usage:
//
//	reportcheck -report report.json -nf lpm-trie -require-degraded
//	reportcheck -report cold.json -compare warm.json
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"castan/internal/castan"
)

func main() {
	var (
		path    = flag.String("report", "", "report JSON path")
		nfName  = flag.String("nf", "", "expected NF name (optional)")
		reqDeg  = flag.Bool("require-degraded", false, "fail unless the report records degradations and budget ticks")
		compare = flag.String("compare", "", "second report that must describe the identical outcome (only analysis_seconds and telemetry may differ)")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "reportcheck: -report is required")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rep, err := castan.ReadReport(f)
	if err != nil {
		fatal(err)
	}
	if *compare != "" {
		g, err := os.Open(*compare)
		if err != nil {
			fatal(err)
		}
		other, err := castan.ReadReport(g)
		g.Close()
		if err != nil {
			fatal(err)
		}
		a, b := *rep, *other
		// The only run-dependent fields: everything else must match.
		a.AnalysisSeconds, b.AnalysisSeconds = 0, 0
		a.Telemetry, b.Telemetry = nil, nil
		if !reflect.DeepEqual(a, b) {
			fatal(fmt.Errorf("%s and %s describe different outcomes (beyond analysis_seconds/telemetry)", *path, *compare))
		}
		fmt.Printf("reportcheck: %s and %s describe the identical outcome\n", *path, *compare)
	}
	if *nfName != "" && rep.NF != *nfName {
		fatal(fmt.Errorf("report is for NF %q, want %q", rep.NF, *nfName))
	}
	if len(rep.Packets) == 0 {
		fatal(fmt.Errorf("report carries no packets"))
	}
	for i, p := range rep.Packets {
		if p.Index != i {
			fatal(fmt.Errorf("packet %d has index %d", i, p.Index))
		}
	}
	if *reqDeg {
		if len(rep.Degradations) == 0 {
			fatal(fmt.Errorf("no degradations recorded; expected a budget-cut run"))
		}
		for _, d := range rep.Degradations {
			if d.Stage == "" || d.Reason == "" || d.Fallback == "" {
				fatal(fmt.Errorf("incomplete degradation record %+v", d))
			}
		}
		if rep.BudgetTicksUsed == 0 {
			fatal(fmt.Errorf("budget_ticks_used is zero on a budget-cut run"))
		}
	}
	fmt.Printf("reportcheck: %s ok (nf %s, %d packets, %d degradations, %d ticks)\n",
		*path, rep.NF, len(rep.Packets), len(rep.Degradations), rep.BudgetTicksUsed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reportcheck:", err)
	os.Exit(1)
}

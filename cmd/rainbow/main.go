// Command rainbow builds a rainbow table for one of the NF hash functions
// over a tailored key space and reports its inversion coverage — the
// §3.5 preprocessing step.
//
// Usage:
//
//	rainbow -hash table -bits 12 -coverage 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"castan/internal/nf"
	"castan/internal/nfhash"
	"castan/internal/rainbow"
)

func main() {
	var (
		hashName = flag.String("hash", "table", "hash family: table or ring")
		bits     = flag.Int("bits", 12, "hash output width in bits")
		coverage = flag.Int("coverage", 8, "table size multiplier over 2^bits")
		dstIP    = flag.Uint64("dst", uint64(nf.LBVIP), "pinned destination IP of the tailored key space")
		dstPort  = flag.Uint("dport", 80, "pinned destination port")
		samples  = flag.Int("samples", 400, "values sampled for the coverage estimate")
	)
	flag.Parse()

	var fn func([]byte) uint64
	switch *hashName {
	case "table":
		fn = nfhash.TableHash
	case "ring":
		fn = nfhash.RingHash
	default:
		fmt.Fprintln(os.Stderr, "rainbow: unknown hash", *hashName)
		os.Exit(2)
	}
	space := nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: uint32(*dstIP), DstPort: uint16(*dstPort)}
	cfg := rainbow.DefaultConfig(*bits)
	cfg.Chains *= *coverage

	start := time.Now()
	tbl, err := rainbow.Build(fn, space, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbow:", err)
		os.Exit(1)
	}
	build := time.Since(start)
	start = time.Now()
	cov := tbl.Coverage(*samples, 99)
	fmt.Printf("%s hash, %d bits: %d chains × %d built in %s\n",
		*hashName, *bits, tbl.Chains(), cfg.ChainLen, build.Round(time.Millisecond))
	fmt.Printf("inversion coverage: %.1f%% (%d samples, %s)\n",
		cov*100, *samples, time.Since(start).Round(time.Millisecond))
}

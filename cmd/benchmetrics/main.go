// Command benchmetrics runs an instrumented CASTAN analysis over the
// seed NF catalog with modest budgets and writes per-NF phase durations
// plus core effort counters as one JSON file (results/BENCH_castan.json
// via `make bench-metrics`). Later performance PRs diff these numbers to
// prove their speedups against recorded baselines rather than anecdotes.
//
// Durations come from the wall clock, so only the counter columns are
// run-to-run stable; the phase timings are indicative.
//
// With -compare, benchmetrics instead re-runs the baseline's exact
// configuration and fails (exit 1) if any deterministic effort counter —
// probe line reads, solver queries, state pops, budget ticks; never
// wall-clock — regresses by more than -tolerance against the baseline
// file. This is the CI perf gate: effort counters are bit-identical
// across machines and load, so the gate has no flakiness to absorb.
//
// Usage:
//
//	benchmetrics -out results/BENCH_castan.json
//	benchmetrics -compare results/BENCH_castan.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"castan/internal/budget"
	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
	"castan/internal/obs/tracediff"
	"castan/internal/store"
)

// coreCounters are the effort columns every benchmark row carries: the
// canonical perf-gate list, shared with the telemetry catalog so
// docs/TELEMETRY.md and this gate can never disagree about what gates.
var coreCounters = obs.GateCounters

type row struct {
	NF       string            `json:"nf"`
	Error    string            `json:"error,omitempty"`
	Seconds  float64           `json:"seconds,omitempty"`
	Phases   []obs.Phase       `json:"phases,omitempty"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Searcher efficiency: state pops until the path that ends up worst
	// completes, with the static-cost priority component on (the default
	// pipeline) and off (a second, ablated run). StaticCostBound is the
	// abstract cache analysis's worst-case cycle bound for the workload.
	StepsToWorst         int    `json:"steps_to_worst,omitempty"`
	StepsToWorstBaseline int    `json:"steps_to_worst_baseline,omitempty"`
	StaticCostBound      uint64 `json:"static_cost_bound,omitempty"`
	// Degraded flags runs that hit a budget or fault fallback (always
	// false here — benchmetrics runs with an unlimited counting meter —
	// but recorded so regressions that start degrading are visible).
	// BudgetTicksUsed is the run's deterministic tick total: the stable
	// effort column performance PRs should diff first.
	Degraded        bool   `json:"degraded"`
	BudgetTicksUsed uint64 `json:"budget_ticks_used"`
}

type report struct {
	Schema  string `json:"schema"`
	Packets int    `json:"packets"`
	States  int    `json:"states"`
	Seed    uint64 `json:"seed"`
	Rows    []row  `json:"rows"`
}

func main() {
	var (
		out       = flag.String("out", "results/BENCH_castan.json", "output path")
		nfs       = flag.String("nfs", "", "comma-separated NF subset (default: the full catalog)")
		packets   = flag.Int("packets", 6, "workload length per NF")
		states    = flag.Int("states", 4000, "exploration budget per NF")
		seed      = flag.Uint64("seed", 2018, "analysis seed")
		storeDir  = flag.String("store", "", "cross-run artifact store directory (see cmd/castan -store)")
		compare   = flag.String("compare", "", "baseline bench JSON: re-run its configuration and exit 1 if any deterministic effort counter regresses more than -tolerance (perf gate mode; -out/-packets/-states/-seed are ignored)")
		tolerance = flag.Float64("tolerance", 0.05, "allowed relative effort-counter regression in -compare mode")
		attribDir = flag.String("attrib-dir", "", "in -compare mode, write per-NF tracediff attribution reports (JSON) to this directory on failure — CI uploads them as artifacts")
	)
	flag.Parse()
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
	}
	if *compare != "" {
		os.Exit(compareAgainst(*compare, *tolerance, st, *attribDir))
	}
	names := nf.Names
	if *nfs != "" {
		names = strings.Split(*nfs, ",")
	}
	rep := report{Schema: "castan-bench-metrics/v1", Packets: *packets, States: *states, Seed: *seed}
	rep.Rows = runRows(names, *packets, *states, *seed, st)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d NFs)\n", *out, len(rep.Rows))
}

func runRows(names []string, packets, states int, seed uint64, st *store.Store) []row {
	var rows []row
	for _, name := range names {
		name = strings.TrimSpace(name)
		r := row{NF: name}
		inst, err := nf.New(name)
		if err != nil {
			r.Error = err.Error()
			rows = append(rows, r)
			continue
		}
		rec := obs.New(nil)
		hier := memsim.New(memsim.DefaultGeometry(), seed)
		// An unlimited meter never cuts anything; it only counts, giving
		// each row its deterministic tick total.
		meter := budget.New(0)
		res, err := castan.Analyze(inst, hier, castan.Config{
			NPackets:  packets,
			MaxStates: states,
			Seed:      seed,
			Obs:       rec,
			Budget:    meter,
			Store:     st,
		})
		if err != nil {
			r.Error = err.Error()
			rows = append(rows, r)
			continue
		}
		r.Seconds = res.AnalysisTime.Seconds()
		r.Phases = res.Telemetry.Phases
		r.Counters = map[string]uint64{}
		for _, c := range coreCounters {
			r.Counters[c] = res.Telemetry.Counters[c]
		}
		r.StepsToWorst = res.StepsToWorstPath
		r.StaticCostBound = res.StaticCostBound
		r.Degraded = res.Degraded()
		r.BudgetTicksUsed = res.BudgetTicksUsed

		// Ablated rerun on a fresh instance: same budgets, static-cost
		// priority off, to record how many extra pops the baseline needs.
		if base, err := nf.New(name); err == nil {
			bres, err := castan.Analyze(base, memsim.New(memsim.DefaultGeometry(), seed), castan.Config{
				NPackets:     packets,
				MaxStates:    states,
				Seed:         seed,
				NoStaticCost: true,
				Store:        st,
			})
			if err == nil {
				r.StepsToWorstBaseline = bres.StepsToWorstPath
			}
		}
		rows = append(rows, r)
		fmt.Printf("%-12s %6.2fs  %d states, %d solver queries, %d probe line reads, %d DRAM misses, worst path in %d pops (baseline %d)\n",
			name, r.Seconds, r.Counters["symbex.states_explored"],
			r.Counters["solver.queries"], r.Counters["memsim.probe_line_reads"],
			r.Counters["memsim.dram_misses"], r.StepsToWorst, r.StepsToWorstBaseline)
	}
	return rows
}

// compareAgainst is the perf-gate mode: re-run the baseline's exact
// configuration and diff every deterministic effort counter. Counters are
// compared over the intersection of the baseline's and the fresh run's
// columns, so a baseline written before a counter existed still gates the
// counters it has. Wall-clock fields are never compared. On failure the
// tracediff attribution table names which stage's counters moved, and
// attribDir (when set) receives the per-NF reports as JSON for CI
// artifact upload.
func compareAgainst(path string, tolerance float64, st *store.Store, attribDir string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("decode baseline %s: %w", path, err))
	}
	if base.Schema != "castan-bench-metrics/v1" {
		fatal(fmt.Errorf("baseline %s has schema %q, want castan-bench-metrics/v1", path, base.Schema))
	}
	names := make([]string, 0, len(base.Rows))
	for _, r := range base.Rows {
		names = append(names, r.NF)
	}
	fmt.Printf("perf gate: re-running %d NFs (packets=%d states=%d seed=%d) against %s, tolerance %.0f%%\n",
		len(names), base.Packets, base.States, base.Seed, path, tolerance*100)
	fresh := runRows(names, base.Packets, base.States, base.Seed, st)
	regressions := 0
	for i, br := range base.Rows {
		fr := fresh[i]
		if br.Error != "" {
			if fr.Error == "" {
				fmt.Printf("  %s: baseline errored (%s), fresh run succeeds — update the baseline\n", br.NF, br.Error)
			}
			continue
		}
		if fr.Error != "" {
			fmt.Printf("FAIL %s: fresh run errored: %s\n", fr.NF, fr.Error)
			regressions++
			continue
		}
		if fr.Degraded && !br.Degraded {
			fmt.Printf("FAIL %s: fresh run degraded, baseline did not\n", fr.NF)
			regressions++
		}
		check := func(col string, bv, fv uint64) {
			if fv > bv && float64(fv) > float64(bv)*(1+tolerance) {
				fmt.Printf("FAIL %s: %s regressed %d -> %d (+%.1f%%)\n",
					fr.NF, col, bv, fv, 100*(float64(fv)/float64(bv)-1))
				regressions++
			}
		}
		for col, bv := range br.Counters {
			if fv, ok := fr.Counters[col]; ok {
				check(col, bv, fv)
			}
		}
		check("budget_ticks_used", br.BudgetTicksUsed, fr.BudgetTicksUsed)

		// Stage attribution for the failures: the tracediff report names
		// which stage owns each regressed counter instead of leaving a
		// bare FAIL line, and attribDir receives it as a CI artifact.
		rep := tracediff.Diff(rowRun(br, "baseline "+br.NF), rowRun(fr, "fresh "+fr.NF), tolerance)
		if rep.HasRegressions() {
			rep.Render(os.Stdout)
			if attribDir != "" {
				if err := writeAttrib(attribDir, fr.NF, rep); err != nil {
					fmt.Fprintln(os.Stderr, "benchmetrics: attribution report:", err)
				}
			}
		}
	}
	if regressions > 0 {
		fmt.Printf("perf gate: %d regression(s) beyond %.0f%% tolerance\n", regressions, tolerance*100)
		return 1
	}
	fmt.Println("perf gate: all effort counters within tolerance")
	return 0
}

// rowRun lifts a bench row into a tracediff run: the gated effort
// counters plus budget_ticks_used as a pseudo-counter, and the recorded
// phase durations for attribution.
func rowRun(r row, label string) *tracediff.Run {
	counters := make(map[string]uint64, len(r.Counters)+1)
	for k, v := range r.Counters {
		counters[k] = v
	}
	counters["budget_ticks_used"] = r.BudgetTicksUsed
	return &tracediff.Run{Label: label, Counters: counters, Phases: r.Phases}
}

func writeAttrib(dir, nfName string, rep *tracediff.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "attrib_"+nfName+".json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmetrics:", err)
	os.Exit(1)
}

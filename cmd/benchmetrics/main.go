// Command benchmetrics runs an instrumented CASTAN analysis over the
// seed NF catalog with modest budgets and writes per-NF phase durations
// plus core effort counters as one JSON file (results/BENCH_castan.json
// via `make bench-metrics`). Later performance PRs diff these numbers to
// prove their speedups against recorded baselines rather than anecdotes.
//
// Durations come from the wall clock, so only the counter columns are
// run-to-run stable; the phase timings are indicative.
//
// Usage:
//
//	benchmetrics -out results/BENCH_castan.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"castan/internal/budget"
	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
)

// coreCounters are the effort columns every benchmark row carries.
var coreCounters = []string{
	"solver.queries",
	"solver.backtracks",
	"symbex.states_explored",
	"symbex.forks",
	"symbex.instructions",
	"memsim.accesses",
	"memsim.dram_misses",
	"rainbow.chains",
	"castan.havocs_reconciled",
}

type row struct {
	NF       string            `json:"nf"`
	Error    string            `json:"error,omitempty"`
	Seconds  float64           `json:"seconds,omitempty"`
	Phases   []obs.Phase       `json:"phases,omitempty"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Searcher efficiency: state pops until the path that ends up worst
	// completes, with the static-cost priority component on (the default
	// pipeline) and off (a second, ablated run). StaticCostBound is the
	// abstract cache analysis's worst-case cycle bound for the workload.
	StepsToWorst         int    `json:"steps_to_worst,omitempty"`
	StepsToWorstBaseline int    `json:"steps_to_worst_baseline,omitempty"`
	StaticCostBound      uint64 `json:"static_cost_bound,omitempty"`
	// Degraded flags runs that hit a budget or fault fallback (always
	// false here — benchmetrics runs with an unlimited counting meter —
	// but recorded so regressions that start degrading are visible).
	// BudgetTicksUsed is the run's deterministic tick total: the stable
	// effort column performance PRs should diff first.
	Degraded        bool   `json:"degraded"`
	BudgetTicksUsed uint64 `json:"budget_ticks_used"`
}

type report struct {
	Schema  string `json:"schema"`
	Packets int    `json:"packets"`
	States  int    `json:"states"`
	Seed    uint64 `json:"seed"`
	Rows    []row  `json:"rows"`
}

func main() {
	var (
		out     = flag.String("out", "results/BENCH_castan.json", "output path")
		nfs     = flag.String("nfs", "", "comma-separated NF subset (default: the full catalog)")
		packets = flag.Int("packets", 6, "workload length per NF")
		states  = flag.Int("states", 4000, "exploration budget per NF")
		seed    = flag.Uint64("seed", 2018, "analysis seed")
	)
	flag.Parse()
	names := nf.Names
	if *nfs != "" {
		names = strings.Split(*nfs, ",")
	}
	rep := report{Schema: "castan-bench-metrics/v1", Packets: *packets, States: *states, Seed: *seed}
	for _, name := range names {
		name = strings.TrimSpace(name)
		r := row{NF: name}
		inst, err := nf.New(name)
		if err != nil {
			r.Error = err.Error()
			rep.Rows = append(rep.Rows, r)
			continue
		}
		rec := obs.New(nil)
		hier := memsim.New(memsim.DefaultGeometry(), *seed)
		// An unlimited meter never cuts anything; it only counts, giving
		// each row its deterministic tick total.
		meter := budget.New(0)
		res, err := castan.Analyze(inst, hier, castan.Config{
			NPackets:  *packets,
			MaxStates: *states,
			Seed:      *seed,
			Obs:       rec,
			Budget:    meter,
		})
		if err != nil {
			r.Error = err.Error()
			rep.Rows = append(rep.Rows, r)
			continue
		}
		r.Seconds = res.AnalysisTime.Seconds()
		r.Phases = res.Telemetry.Phases
		r.Counters = map[string]uint64{}
		for _, c := range coreCounters {
			r.Counters[c] = res.Telemetry.Counters[c]
		}
		r.StepsToWorst = res.StepsToWorstPath
		r.StaticCostBound = res.StaticCostBound
		r.Degraded = res.Degraded()
		r.BudgetTicksUsed = res.BudgetTicksUsed

		// Ablated rerun on a fresh instance: same budgets, static-cost
		// priority off, to record how many extra pops the baseline needs.
		if base, err := nf.New(name); err == nil {
			bres, err := castan.Analyze(base, memsim.New(memsim.DefaultGeometry(), *seed), castan.Config{
				NPackets:     *packets,
				MaxStates:    *states,
				Seed:         *seed,
				NoStaticCost: true,
			})
			if err == nil {
				r.StepsToWorstBaseline = bres.StepsToWorstPath
			}
		}
		rep.Rows = append(rep.Rows, r)
		fmt.Printf("%-12s %6.2fs  %d states, %d solver queries, %d DRAM misses, worst path in %d pops (baseline %d)\n",
			name, r.Seconds, r.Counters["symbex.states_explored"],
			r.Counters["solver.queries"], r.Counters["memsim.dram_misses"],
			r.StepsToWorst, r.StepsToWorstBaseline)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d NFs)\n", *out, len(rep.Rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmetrics:", err)
	os.Exit(1)
}

// Command castand runs castan as a long-lived analysis service: an
// HTTP/JSON daemon that queues concurrent analysis requests, shards them
// across a supervised worker fleet, and degrades instead of dying under
// overload, injected faults, or worker crashes (see internal/service for
// the full contract).
//
// Lifecycle: SIGTERM/SIGINT starts a graceful drain — admission stops
// (/readyz turns 503), every queued and in-flight analysis is
// budget-canceled so it returns a valid degraded report, the fleet is
// waited on up to -drain-timeout, metrics are flushed, and the process
// exits 0. A second signal exits immediately.
//
// Usage:
//
//	castand -addr 127.0.0.1:8347 -workers 4 -store /tmp/castan-store
//	castand -addr 127.0.0.1:0 -addr-file /tmp/castand.addr   # scripts
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"castan/internal/obs"
	"castan/internal/retry"
	"castan/internal/service"
	"castan/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8347", "listen address (port 0 picks a free port)")
		addrFile     = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts)")
		workers      = flag.Int("workers", 4, "analysis worker fleet size")
		analysisW    = flag.Int("analysis-workers", 1, "per-job pipeline fan-out (output-invariant)")
		queueDepth   = flag.Int("queue", 64, "admission queue depth")
		tenantCap    = flag.Int("tenant-cap", 8, "per-tenant queued+running cap")
		tenantBudget = flag.Uint64("tenant-budget", 0, "cumulative tick allotment per tenant (0 = unlimited)")
		defBudget    = flag.Uint64("budget", 0, "default per-request tick budget (0 = unlimited)")
		defDeadline  = flag.Duration("deadline", 0, "default per-request deadline, queue wait included (0 = none)")
		defPackets   = flag.Int("packets", 4, "default workload length per request")
		defStates    = flag.Int("states", 1500, "default exploration budget per request")
		storeDir     = flag.String("store", "", "artifact + report cache directory (empty = no store)")
		chaos        = flag.Bool("chaos", false, "honor fault/chaos request fields (tests only)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGTERM")
		metricsOut   = flag.String("metrics-out", "", "write the final service metrics snapshot here on exit")
		crashQuar    = flag.Int("crash-quarantine", 3, "worker crashes per request shape before quarantine")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:          *workers,
		AnalysisWorkers:  *analysisW,
		QueueDepth:       *queueDepth,
		TenantCap:        *tenantCap,
		TenantBudget:     *tenantBudget,
		DefaultBudget:    *defBudget,
		DefaultDeadline:  *defDeadline,
		DefaultPackets:   *defPackets,
		DefaultMaxStates: *defStates,
		CrashQuarantine:  *crashQuar,
		AllowChaos:       *chaos,
		Restart:          retry.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0.2, Seed: 1},
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
	}

	srv := service.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		// Write-then-rename so watchers never read a half-written address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "castand: serve:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "castand: listening on %s (%d workers, queue %d, chaos %v)\n",
		ln.Addr(), *workers, *queueDepth, *chaos)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(os.Stderr, "castand: %s received, draining (timeout %s)\n", got, *drainTimeout)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "castand: second signal, exiting immediately")
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	_ = httpSrv.Shutdown(ctx)
	if *metricsOut != "" {
		m := srv.Metrics()
		if m == nil {
			m = &obs.Metrics{}
		}
		if err := m.WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "castand: metrics flush:", err)
		}
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "castand:", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "castand: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "castand:", err)
	os.Exit(1)
}

# Make targets mirror the CI pipeline (.github/workflows/ci.yml) exactly,
# so "it passed locally" and "it passed CI" mean the same thing.

GO ?= go

.PHONY: all build test race bench bench-smoke fmt fmt-fix vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full campaign: regenerates every table and figure under results/.
bench:
	$(GO) test -bench . -benchmem .

# Scaled-down benchmark pass (what CI runs): every benchmark executes
# once with -short budgets, proving the harness end to end in minutes.
bench-smoke:
	$(GO) test -short -bench . -benchtime 1x -run '^$$' .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

check: fmt vet build test

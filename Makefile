# Make targets mirror the CI pipeline (.github/workflows/ci.yml) exactly,
# so "it passed locally" and "it passed CI" mean the same thing.

GO ?= go

.PHONY: all build test race bench bench-smoke fmt fmt-fix vet lint irlint print-staticcheck-version check

# Pinned staticcheck release; CI installs exactly this version.
STATICCHECK_VERSION = 2025.1.1

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full campaign: regenerates every table and figure under results/.
bench:
	$(GO) test -bench . -benchmem .

# Scaled-down benchmark pass (what CI runs): every benchmark executes
# once with -short budgets, proving the harness end to end in minutes.
bench-smoke:
	$(GO) test -short -bench . -benchtime 1x -run '^$$' .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

# staticcheck is optional locally (skipped when not installed); CI pins
# STATICCHECK_VERSION and fails on findings.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs $(STATICCHECK_VERSION))"; \
	fi

# The IR static-analysis gate: every built-in NF module must lint clean.
irlint:
	$(GO) run ./cmd/irlint

# Used by CI to install the exact pinned staticcheck.
print-staticcheck-version:
	@echo $(STATICCHECK_VERSION)

check: fmt vet lint build test irlint

# Make targets mirror the CI pipeline (.github/workflows/ci.yml) exactly,
# so "it passed locally" and "it passed CI" mean the same thing.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-metrics bench-gate store-smoke trace-smoke fault-smoke fuzz-smoke vrange-ablation service-smoke lint-catalog telemetry-catalog tracediff-selftest fmt fmt-fix vet lint lint-strict irlint print-staticcheck-version check

# Pinned staticcheck release; CI installs exactly this version.
STATICCHECK_VERSION = 2025.1.1

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full campaign: regenerates every table and figure under results/.
bench:
	$(GO) test -bench . -benchmem .

# Scaled-down benchmark pass (what CI runs): every benchmark executes
# once with -short budgets, proving the harness end to end in minutes.
bench-smoke:
	$(GO) test -short -bench . -benchtime 1x -run '^$$' .

# Instrumented analysis over the seed NF catalog: phase durations plus
# core effort counters per NF, written as results/BENCH_castan.json.
# Performance PRs diff this file to prove their speedups.
bench-metrics:
	$(GO) run ./cmd/benchmetrics -out results/BENCH_castan.json

# Perf gate (what CI runs): re-run the checked-in benchmark baseline's
# configuration and fail if any deterministic effort counter — probe line
# reads, solver queries, state pops, budget ticks; never wall-clock —
# regresses more than 5%. Update the baseline with `make bench-metrics`
# when an effort change is intentional. On failure the tracediff
# attribution table names the stage and counter that moved, and the
# per-NF reports land in BENCH_ATTRIB_DIR for CI artifact upload.
BENCH_ATTRIB_DIR ?= /tmp/castan-bench-attrib
bench-gate:
	$(GO) run ./cmd/benchmetrics -compare results/BENCH_castan.json \
		-attrib-dir $(BENCH_ATTRIB_DIR)

# Store smoke (what CI runs): two identical cmd/castan runs sharing one
# -store directory. The warm run must hit the store (castan.store.hits
# nonzero), and both runs must produce byte-identical workloads and
# identical reports modulo wall-clock/telemetry — a warm store changes
# effort, never output. CI overrides STORE_SMOKE_DIR and uploads it.
STORE_SMOKE_DIR ?= /tmp/castan-store-smoke
store-smoke:
	rm -rf $(STORE_SMOKE_DIR)/store
	mkdir -p $(STORE_SMOKE_DIR)/store
	$(GO) build -o $(STORE_SMOKE_DIR)/castan ./cmd/castan
	$(STORE_SMOKE_DIR)/castan -nf lpm-dl1 -packets 8 -states 3000 \
		-store $(STORE_SMOKE_DIR)/store \
		-out $(STORE_SMOKE_DIR)/cold.pcap \
		-report $(STORE_SMOKE_DIR)/cold-report.json
	$(STORE_SMOKE_DIR)/castan -nf lpm-dl1 -packets 8 -states 3000 \
		-store $(STORE_SMOKE_DIR)/store \
		-out $(STORE_SMOKE_DIR)/warm.pcap \
		-report $(STORE_SMOKE_DIR)/warm-report.json \
		-metrics-out $(STORE_SMOKE_DIR)/warm-metrics.json
	cmp $(STORE_SMOKE_DIR)/cold.pcap $(STORE_SMOKE_DIR)/warm.pcap
	$(GO) run ./cmd/tracecheck -metrics $(STORE_SMOKE_DIR)/warm-metrics.json \
		-require castan.store.hits
	$(GO) run ./cmd/reportcheck -report $(STORE_SMOKE_DIR)/cold-report.json \
		-nf lpm-dl1 -compare $(STORE_SMOKE_DIR)/warm-report.json

# Short observability smoke (what CI runs): one traced cmd/castan run,
# then schema-validate the trace and assert the core counters moved.
# CI overrides TRACE_SMOKE_DIR to a workspace dir and uploads it.
TRACE_SMOKE_DIR ?= /tmp/castan-trace-smoke
trace-smoke:
	mkdir -p $(TRACE_SMOKE_DIR)
	$(GO) run ./cmd/castan -nf lpm-trie -packets 6 -states 3000 \
		-out $(TRACE_SMOKE_DIR)/lpm-trie.pcap \
		-trace $(TRACE_SMOKE_DIR)/trace.json \
		-metrics-out $(TRACE_SMOKE_DIR)/metrics.json \
		-report $(TRACE_SMOKE_DIR)/report.json
	$(GO) run ./cmd/tracecheck -trace $(TRACE_SMOKE_DIR)/trace.json \
		-metrics $(TRACE_SMOKE_DIR)/metrics.json \
		-require solver.queries,memsim.dram_misses,symbex.states_explored

# Robustness smoke (what CI runs): the fault-injection matrix over the
# whole NF catalog, then two cmd/castan runs under a deliberately tiny
# tick budget — each must exit 3 (degraded, not failed) and still write a
# schema-valid report that records the degradations and the tick account.
# CI overrides FAULT_SMOKE_DIR to a workspace dir and uploads it.
FAULT_SMOKE_DIR ?= /tmp/castan-fault-smoke
fault-smoke:
	mkdir -p $(FAULT_SMOKE_DIR)
	$(GO) test ./internal/castan/ -run TestFaultMatrix -count=1
	$(GO) build -o $(FAULT_SMOKE_DIR)/castan ./cmd/castan
	@set -e; for n in lpm-trie lb-chain; do \
		echo "== $$n under -budget 2000: expecting exit 3 (degraded)"; \
		code=0; $(FAULT_SMOKE_DIR)/castan -nf $$n -packets 4 -states 2000 -budget 2000 \
			-out $(FAULT_SMOKE_DIR)/$$n.pcap \
			-report $(FAULT_SMOKE_DIR)/$$n-report.json || code=$$?; \
		if [ "$$code" -ne 3 ]; then echo "want exit 3, got $$code"; exit 1; fi; \
		$(GO) run ./cmd/reportcheck -report $(FAULT_SMOKE_DIR)/$$n-report.json \
			-nf $$n -require-degraded; \
	done

# Value-range ablation smoke (what CI runs): one cmd/castan run on a
# ring NF with -no-vrange, proving the analysis is cleanly severable —
# pruning, merging, and the solver memo all off, yet the run completes,
# writes a schema-valid report, and reports zero for every vrange
# counter. CI overrides VRANGE_ABLATION_DIR and uploads it.
VRANGE_ABLATION_DIR ?= /tmp/castan-vrange-ablation
vrange-ablation:
	mkdir -p $(VRANGE_ABLATION_DIR)
	$(GO) build -o $(VRANGE_ABLATION_DIR)/castan ./cmd/castan
	$(VRANGE_ABLATION_DIR)/castan -nf nat-ring -packets 6 -states 4000 \
		-no-vrange \
		-out $(VRANGE_ABLATION_DIR)/nat-ring.pcap \
		-metrics-out $(VRANGE_ABLATION_DIR)/metrics.json \
		-report $(VRANGE_ABLATION_DIR)/report.json
	$(GO) run ./cmd/reportcheck -report $(VRANGE_ABLATION_DIR)/report.json \
		-nf nat-ring
	@for c in symbex.pruned_edges symbex.merged_states solver.memo_hits; do \
		if grep -q "\"$$c\": *[1-9]" $(VRANGE_ABLATION_DIR)/metrics.json; then \
			echo "-no-vrange run still moved $$c:"; \
			grep "\"$$c\"" $(VRANGE_ABLATION_DIR)/metrics.json; exit 1; \
		fi; \
	done

# Service smoke (what CI runs): boot castand with chaos and a store,
# drive 50 mixed requests through castanload (tiny budgets forcing
# degradation, armed fault plans, idempotency-key collisions, retried
# 429s), gate one live endpoint response through reportcheck -url, then
# SIGTERM the daemon: it must drain in-flight work to valid reports,
# flush metrics, and exit 0. CI overrides SERVICE_SMOKE_DIR and uploads
# the logs, load summary, and final metrics snapshot.
SERVICE_SMOKE_DIR ?= /tmp/castan-service-smoke
service-smoke:
	mkdir -p $(SERVICE_SMOKE_DIR)
	$(GO) build -o $(SERVICE_SMOKE_DIR)/castand ./cmd/castand
	$(GO) build -o $(SERVICE_SMOKE_DIR)/castanload ./cmd/castanload
	$(GO) build -o $(SERVICE_SMOKE_DIR)/reportcheck ./cmd/reportcheck
	@set -e; dir=$(SERVICE_SMOKE_DIR); rm -f $$dir/addr; \
	$$dir/castand -addr 127.0.0.1:0 -addr-file $$dir/addr -chaos \
		-store $$dir/store -metrics-out $$dir/metrics.json \
		2> $$dir/castand.log & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "castand never published its address:"; cat $$dir/castand.log; exit 1; }; \
	addr=$$(cat $$dir/addr); \
	echo "== castand on $$addr: 50 mixed requests (tiny budgets + fault plans)"; \
	$$dir/castanload -addr-file $$dir/addr -n 50 -c 8 -seed 1 \
		-tiny-budget-frac 0.3 -fault-frac 0.2 -out $$dir/load-summary.json; \
	echo "== live-endpoint report gate (reportcheck -url)"; \
	$$dir/reportcheck -url "http://$$addr/v1/analyze?nf=lpm-trie&packets=4&states=1200&seed=7" -nf lpm-trie; \
	echo "== SIGTERM: graceful drain must exit 0"; \
	kill -TERM $$pid; \
	wait $$pid || { echo "castand drain exited nonzero:"; cat $$dir/castand.log; exit 1; }; \
	trap - EXIT; \
	grep -q "drained cleanly" $$dir/castand.log || { echo "no clean-drain line:"; cat $$dir/castand.log; exit 1; }; \
	[ -s $$dir/metrics.json ] || { echo "metrics snapshot not flushed"; exit 1; }; \
	echo "service smoke OK"

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

# staticcheck is optional locally (skipped when not installed); CI runs
# lint-strict, which installs nothing but refuses to pass without it.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs $(STATICCHECK_VERSION))"; \
	fi

# Blocking variant: a missing staticcheck is a failure, not a skip. CI
# installs the pinned $(STATICCHECK_VERSION) first and then runs this.
lint-strict:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck $(STATICCHECK_VERSION) required:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
		exit 1; \
	}
	staticcheck ./...

# The IR static-analysis gate: every built-in NF module must lint clean.
irlint:
	$(GO) run ./cmd/irlint

# Fuzz smoke (what CI runs): replay the seed corpus, then a short live
# fuzzing session of the module validator. Arbitrary decoded modules must
# never panic Validate, and modules it accepts must survive the
# Disassemble round-trip.
FUZZ_TIME ?= 30s
fuzz-smoke:
	$(GO) test ./internal/ir/ -run FuzzModuleValidate -count=1
	$(GO) test ./internal/ir/ -fuzz FuzzModuleValidate -fuzztime $(FUZZ_TIME)

# Lint-catalog gate (what CI runs): regenerate the full irlint -json
# document (findings with source coordinates, cache-cost stats, taint
# controllability) for the whole NF catalog and fail on any drift from
# the checked-in golden, then do the same for the value-range analysis
# catalog golden. Update with `go test ./cmd/irlint/ -update` and
# `go test ./internal/analysis/ -run TestVRangeCatalogGolden -update`.
LINT_CATALOG_DIR ?= /tmp/castan-lint-catalog
lint-catalog:
	mkdir -p $(LINT_CATALOG_DIR)
	$(GO) run ./cmd/irlint -json > $(LINT_CATALOG_DIR)/catalog.json
	diff -u cmd/irlint/testdata/catalog.json.golden $(LINT_CATALOG_DIR)/catalog.json \
		> $(LINT_CATALOG_DIR)/catalog.diff || { \
			echo "irlint catalog drifted from cmd/irlint/testdata/catalog.json.golden:"; \
			cat $(LINT_CATALOG_DIR)/catalog.diff; \
			echo "regenerate with: go test ./cmd/irlint/ -update"; \
			exit 1; \
		}
	$(GO) test ./internal/analysis/ -run TestVRangeCatalogGolden -count=1

# Regenerate docs/TELEMETRY.md, the counter/gauge/histogram/phase
# catalog, from instrumented sample analyses. Run after adding or
# renaming an instrument; CI's tracediff-selftest job fails on drift.
telemetry-catalog:
	$(GO) run ./cmd/telemetrycatalog -out docs/TELEMETRY.md

# tracediff self-test (what CI runs): the stored fixture pair under
# cmd/tracediff/testdata must keep diffing the same way — a clean exit on
# identical runs, exit 3 with castan.discover as the top stage on the
# regressed pair — and docs/TELEMETRY.md must match a regeneration.
TRACEDIFF_SELFTEST_DIR ?= /tmp/castan-tracediff-selftest
tracediff-selftest:
	mkdir -p $(TRACEDIFF_SELFTEST_DIR)
	$(GO) build -o $(TRACEDIFF_SELFTEST_DIR)/tracediff ./cmd/tracediff
	$(TRACEDIFF_SELFTEST_DIR)/tracediff \
		-base cmd/tracediff/testdata/base_metrics.json \
		-new cmd/tracediff/testdata/base_metrics.json
	@code=0; $(TRACEDIFF_SELFTEST_DIR)/tracediff \
		-base cmd/tracediff/testdata/base_metrics.json \
		-base-trace cmd/tracediff/testdata/base_trace.jsonl \
		-new cmd/tracediff/testdata/regressed_metrics.json \
		-new-trace cmd/tracediff/testdata/regressed_trace.jsonl \
		-json $(TRACEDIFF_SELFTEST_DIR)/report.json || code=$$?; \
	if [ "$$code" -ne 3 ]; then echo "want exit 3 on regressed fixtures, got $$code"; exit 1; fi
	grep -q '"top_stage": *"castan.discover"' $(TRACEDIFF_SELFTEST_DIR)/report.json || { \
		echo "fixture report lost its castan.discover attribution:"; \
		cat $(TRACEDIFF_SELFTEST_DIR)/report.json; exit 1; \
	}
	$(GO) run ./cmd/telemetrycatalog -out $(TRACEDIFF_SELFTEST_DIR)/TELEMETRY.md
	diff -u docs/TELEMETRY.md $(TRACEDIFF_SELFTEST_DIR)/TELEMETRY.md || { \
		echo "docs/TELEMETRY.md drifted; regenerate with: make telemetry-catalog"; \
		exit 1; \
	}

# Used by CI to install the exact pinned staticcheck.
print-staticcheck-version:
	@echo $(STATICCHECK_VERSION)

check: fmt vet lint build test irlint

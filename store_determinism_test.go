package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
	"castan/internal/pcap"
	"castan/internal/store"
)

// The artifact store extends the determinism rule (DESIGN.md decisions 6
// and 11) across process boundaries: a warm store changes how much work a
// run does — discovery is skipped entirely — but never what it outputs,
// at any worker count.

func analyzeWithStore(t *testing.T, dir string, workers int) (*obs.Recorder, []byte) {
	t.Helper()
	inst, err := nf.New("lpm-dl1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.NewFakeClock(1))
	out, err := castan.Analyze(inst, memsim.New(memsim.DefaultGeometry(), 2018), castan.Config{
		NPackets:  12,
		MaxStates: 3000,
		Seed:      2018,
		Workers:   workers,
		Store:     st,
		Obs:       rec,
	})
	if err != nil {
		t.Fatalf("Analyze(W=%d): %v", workers, err)
	}
	path := filepath.Join(t.TempDir(), "out.pcap")
	if err := pcap.WriteFile(path, out.Frames); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return rec, raw
}

func TestStoreWarmRunDeterminismAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	recCold, refPCAP := analyzeWithStore(t, dir, 1)
	if v := recCold.Counter("castan.store.writes").Value(); v == 0 {
		t.Fatal("cold run persisted nothing")
	}
	if v := recCold.Counter("memsim.probe_line_reads").Value(); v == 0 {
		t.Fatal("cold run did not probe")
	}
	for _, w := range []int{1, 4, 8} {
		rec, raw := analyzeWithStore(t, dir, w)
		if !bytes.Equal(raw, refPCAP) {
			t.Errorf("warm W=%d: PCAP bytes differ from cold run", w)
		}
		if v := rec.Counter("castan.store.hits").Value(); v == 0 {
			t.Errorf("warm W=%d: no store hit", w)
		}
		if v := rec.Counter("castan.store.misses").Value(); v != 0 {
			t.Errorf("warm W=%d: %d store misses, want 0", w, v)
		}
		if v := rec.Counter("memsim.probe_line_reads").Value(); v != 0 {
			t.Errorf("warm W=%d: discovery still probed (%d line reads)", w, v)
		}
	}
}

// TestDiscoveryProbeBudgetRegression pins the batched-probing win: before
// batched probes and disjointness pruning, a cold lpm-dl1 discovery at
// this configuration read 16,429,074 cache lines; the rewritten discovery
// reads under 1.5M. The ceiling here is 10x below the old cost with ~10%
// headroom, so any change that quietly reverts the batching or the
// pruning fails this test (and the CI perf gate) rather than landing.
func TestDiscoveryProbeBudgetRegression(t *testing.T) {
	inst, err := nf.New("lpm-dl1")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.NewFakeClock(1))
	_, err = castan.Analyze(inst, memsim.New(memsim.DefaultGeometry(), 2018), castan.Config{
		NPackets:  12,
		MaxStates: 3000,
		Seed:      2018,
		Obs:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := rec.Counter("memsim.probe_line_reads").Value()
	if reads == 0 {
		t.Fatal("discovery did not probe")
	}
	const ceiling = 1_640_000 // 16,429,074 / 10, rounded down
	if reads > ceiling {
		t.Errorf("lpm-dl1 discovery read %d cache lines, want <= %d (10x under the pre-batching 16,429,074)", reads, ceiling)
	}
	t.Logf("lpm-dl1 discovery: %d probe line reads", reads)
}
